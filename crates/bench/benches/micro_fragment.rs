//! Columnar data-plane micro-benchmark: span segments vs owned-vector
//! segments (the pre-refactor layout), on the two hot paths the refactor
//! touched — map-side segment construction and the reduce-side fragment
//! kernel.
//!
//! Besides throughput, the bench counts heap allocations with a wrapping
//! global allocator and prints them before Criterion runs: span-based
//! splitting must perform **zero per-segment token allocations** (only the
//! one output `Vec` per record), while the owned emulation pays one token
//! `Vec` per segment. Numbers are recorded in `results/columnar.md`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fsjoin::fragment::{join_fragment, CandidateRecord, JoinKernel, PairScope};
use fsjoin::horizontal::JoinRule;
use fsjoin::vertical::split_record;
use fsjoin::{FilterSet, FilterStats};
use ssj_similarity::intersect::intersect_count_adaptive;
use ssj_similarity::Measure;
use ssj_text::{Collection, TokenPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---- Allocation counting ---------------------------------------------------

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOC_CALLS.load(Ordering::Relaxed) - before)
}

// ---- The owned-vector baseline (pre-refactor segment layout) ---------------

struct OwnedSegment {
    rid: u32,
    len: u32,
    tokens: Vec<u32>,
}

/// The pre-columnar `split_record`: identical partitioning logic, but each
/// segment clones its token run into an owned `Vec`.
fn split_record_owned(rid: u32, tokens: &[u32], pivots: &[u32]) -> Vec<(usize, OwnedSegment)> {
    let len = tokens.len();
    let mut out = Vec::new();
    let mut start = 0usize;
    for (k, &b) in pivots.iter().enumerate() {
        let end = start + tokens[start..].partition_point(|&t| t < b);
        if end > start {
            out.push((
                k,
                OwnedSegment {
                    rid,
                    len: len as u32,
                    tokens: tokens[start..end].to_vec(),
                },
            ));
        }
        start = end;
    }
    if start < len {
        out.push((
            pivots.len(),
            OwnedSegment {
                rid,
                len: len as u32,
                tokens: tokens[start..].to_vec(),
            },
        ));
    }
    out
}

/// The pre-columnar loop kernel over owned segments: every pair, adaptive
/// intersection, no filters — mirrors `JoinKernel::Loop` with
/// `FilterSet::NONE` so the span/owned comparison isolates token access.
fn loop_join_owned(segments: &[OwnedSegment], theta: f64) -> usize {
    let mut hits = 0usize;
    for (i, a) in segments.iter().enumerate() {
        for b in &segments[i + 1..] {
            if a.rid == b.rid {
                continue;
            }
            let c = intersect_count_adaptive(&a.tokens, &b.tokens);
            if c > 0 && Measure::Jaccard.passes(c, a.len as usize, b.len as usize, theta) {
                hits += 1;
            }
        }
    }
    hits
}

/// The identical loop over span segments — the only difference from
/// [`loop_join_owned`] is that token slices are resolved through the pool.
fn loop_join_span(pool: &TokenPool, segments: &[fsjoin::Segment], theta: f64) -> usize {
    let mut hits = 0usize;
    for (i, a) in segments.iter().enumerate() {
        let at = a.tokens(pool);
        for b in &segments[i + 1..] {
            if a.rid == b.rid {
                continue;
            }
            let c = intersect_count_adaptive(at, b.tokens(pool));
            if c > 0 && Measure::Jaccard.passes(c, a.len as usize, b.len as usize, theta) {
                hits += 1;
            }
        }
    }
    hits
}

// ---- Fixtures --------------------------------------------------------------

fn fixture() -> (Collection, Vec<u32>) {
    let c = ssj_bench::bench_corpus();
    let pivots =
        fsjoin::pivots::select_pivots(&c.token_freqs, 15, fsjoin::PivotStrategy::EvenTf, 42);
    (c, pivots)
}

fn split_all_span(c: &Collection, pivots: &[u32]) -> usize {
    let mut segments = 0usize;
    for v in c.iter() {
        segments += split_record(v.id, 0, v.tokens, c.span(v.id), pivots).len();
    }
    segments
}

fn split_all_owned(c: &Collection, pivots: &[u32]) -> usize {
    let mut segments = 0usize;
    for v in c.iter() {
        segments += split_record_owned(v.id, v.tokens, pivots).len();
    }
    segments
}

/// All segments of one fragment, span form (with the pool they point into).
fn fragment_segments(c: &Collection, pivots: &[u32], fragment: usize) -> Vec<fsjoin::Segment> {
    let mut out = Vec::new();
    for v in c.iter() {
        for (k, seg) in split_record(v.id, 0, v.tokens, c.span(v.id), pivots) {
            if k == fragment {
                out.push(seg);
            }
        }
    }
    out
}

fn fragment_segments_owned(c: &Collection, pivots: &[u32], fragment: usize) -> Vec<OwnedSegment> {
    let mut out = Vec::new();
    for v in c.iter() {
        for (k, seg) in split_record_owned(v.id, v.tokens, pivots) {
            if k == fragment {
                out.push(seg);
            }
        }
    }
    out
}

fn run_span_kernel(pool: &TokenPool, segments: &[fsjoin::Segment]) -> Vec<CandidateRecord> {
    run_kernel_at(pool, segments, 0.8, JoinKernel::Loop, FilterSet::NONE, true).0
}

/// Run one fragment kernel configuration and return (candidates, stats) —
/// the θ/bitmap sweep reads the stats to report prune rates honestly.
fn run_kernel_at(
    pool: &TokenPool,
    segments: &[fsjoin::Segment],
    theta: f64,
    kernel: JoinKernel,
    filters: FilterSet,
    bitmap: bool,
) -> (Vec<CandidateRecord>, FilterStats) {
    let mut stats = FilterStats::default();
    let out = join_fragment(
        pool,
        segments,
        JoinRule::All,
        PairScope::SelfJoin,
        Measure::Jaccard,
        theta,
        kernel,
        filters,
        Default::default(),
        bitmap,
        &mut stats,
    );
    (out, stats)
}

// ---- Allocation report (printed once, before Criterion) --------------------

fn report_allocations(c: &Collection, pivots: &[u32]) {
    let records = c.len();
    let (segments, span_allocs) = allocs_during(|| split_all_span(c, pivots));
    let (_, owned_allocs) = allocs_during(|| split_all_owned(c, pivots));
    println!(
        "alloc-report: records={records} segments={segments} \
         span_split_allocs={span_allocs} owned_split_allocs={owned_allocs}"
    );
    // The refactor's claim: splitting allocates only the per-record output
    // Vec (plus its growth reallocs) — never per segment. The owned layout
    // pays ≥ 1 allocation per segment on top of that.
    assert!(
        span_allocs < segments,
        "span splitting must not allocate per segment \
         ({span_allocs} allocs for {segments} segments)"
    );
    assert!(
        owned_allocs > segments,
        "owned emulation should allocate per segment \
         ({owned_allocs} allocs for {segments} segments)"
    );

    let pool_segments = fragment_segments(c, pivots, 0);
    let (span_out, kernel_allocs) = allocs_during(|| {
        let out = run_span_kernel(c.pool(), &pool_segments);
        out.len()
    });
    println!(
        "alloc-report: fragment0_segments={} span_kernel_candidates={span_out} \
         span_kernel_allocs={kernel_allocs} (output vec growth only)",
        pool_segments.len()
    );
}

// ---- Criterion groups ------------------------------------------------------

fn bench_segment_construction(c: &mut Criterion) {
    let (collection, pivots) = fixture();
    report_allocations(&collection, &pivots);
    let mut g = c.benchmark_group("segment_construction");
    g.sample_size(20);
    g.bench_function("span", |bench| {
        bench.iter(|| split_all_span(black_box(&collection), black_box(&pivots)))
    });
    g.bench_function("owned", |bench| {
        bench.iter(|| split_all_owned(black_box(&collection), black_box(&pivots)))
    });
    g.finish();
}

fn bench_fragment_kernel(c: &mut Criterion) {
    let (collection, pivots) = fixture();
    let span_segments = fragment_segments(&collection, &pivots, 0);
    let owned_segments = fragment_segments_owned(&collection, &pivots, 0);
    // Sanity: both layouts see the same fragment.
    assert_eq!(span_segments.len(), owned_segments.len());
    // Sanity: identical loops must see identical hit counts.
    assert_eq!(
        loop_join_span(collection.pool(), &span_segments, 0.8),
        loop_join_owned(&owned_segments, 0.8)
    );
    let mut g = c.benchmark_group("fragment_kernel");
    g.sample_size(20);
    g.bench_function("span_loop", |bench| {
        bench.iter(|| loop_join_span(collection.pool(), black_box(&span_segments), 0.8))
    });
    g.bench_function("owned_loop", |bench| {
        bench.iter(|| loop_join_owned(black_box(&owned_segments), 0.8))
    });
    // Context: the full production kernel (filters off, candidate records
    // materialized) on the same span segments.
    g.bench_function("span_join_fragment", |bench| {
        bench.iter_batched(
            || (),
            |()| run_span_kernel(collection.pool(), black_box(&span_segments)).len(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Bitmap-prune sweep: the Loop kernel with filters off (every segment
/// pair reaches the verification step, isolating the bitmap check), θ ∈
/// {0.75, 0.85, 0.95}, bitmap prune on vs off. Equal outputs are asserted
/// per configuration (the prune is lossless); the printed prune rate
/// contextualizes the timing delta.
fn bench_bitmap_prune(c: &mut Criterion) {
    let (collection, pivots) = fixture();
    let segments = fragment_segments(&collection, &pivots, 0);
    let pool = collection.pool();
    let mut g = c.benchmark_group("fragment_bitmap");
    g.sample_size(20);
    for theta in [0.75, 0.85, 0.95] {
        let (on_out, on_stats) = run_kernel_at(
            pool,
            &segments,
            theta,
            JoinKernel::Loop,
            FilterSet::NONE,
            true,
        );
        let (off_out, off_stats) = run_kernel_at(
            pool,
            &segments,
            theta,
            JoinKernel::Loop,
            FilterSet::NONE,
            false,
        );
        assert_eq!(on_out, off_out, "bitmap prune must be lossless");
        println!(
            "bitmap-report: theta={theta} checks={} pruned={} \
             intersections_on={} intersections_off={}",
            on_stats.bitmap_checks,
            on_stats.bitmap_pruned,
            on_stats.intersections,
            off_stats.intersections
        );
        g.bench_function(format!("loop_bitmap_on/{theta}"), |bench| {
            bench.iter(|| {
                run_kernel_at(
                    pool,
                    black_box(&segments),
                    theta,
                    JoinKernel::Loop,
                    FilterSet::NONE,
                    true,
                )
                .0
                .len()
            })
        });
        g.bench_function(format!("loop_bitmap_off/{theta}"), |bench| {
            bench.iter(|| {
                run_kernel_at(
                    pool,
                    black_box(&segments),
                    theta,
                    JoinKernel::Loop,
                    FilterSet::NONE,
                    false,
                )
                .0
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_segment_construction,
    bench_fragment_kernel,
    bench_bitmap_prune
);
criterion_main!(benches);
