//! Micro-benchmark of the task executor's result handoff: the lock-free
//! slot vector ([`run_tasks`]) vs the retired per-task mutex slots
//! ([`run_tasks_locked`]). Many tiny tasks make the handoff cost visible;
//! the lock-free path skips one `Mutex` lock/unlock round-trip per task
//! completion and shows up as a lower per-task overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_mapreduce::executor::{run_tasks, run_tasks_locked};
use std::hint::black_box;

/// A tiny task: a few arithmetic steps so the handoff dominates.
fn tiny(i: usize, x: u64) -> u64 {
    let mut h = x ^ (i as u64);
    h = h.wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 29;
    h
}

fn bench_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_handoff");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let tasks: Vec<u64> = (0..n as u64).collect();
        g.bench_function(format!("lockfree_{n}_tasks"), |b| {
            b.iter(|| {
                let out = run_tasks(4, black_box(tasks.clone()), tiny);
                black_box(out)
            })
        });
        g.bench_function(format!("mutex_{n}_tasks"), |b| {
            b.iter(|| {
                let out = run_tasks_locked(4, black_box(tasks.clone()), tiny);
                black_box(out)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_handoff);
criterion_main!(benches);
