//! Figure 10 (bench-scale): FS-Join across horizontal-partition counts.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_bench::bench_corpus;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for t in [2usize, 5, 10] {
        g.bench_function(format!("fsjoin_h{t}"), |b| {
            let cfg = fsjoin::FsJoinConfig::default()
                .with_theta(0.8)
                .with_horizontal(t);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
