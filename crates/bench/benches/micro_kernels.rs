//! Micro-benchmarks of the hot kernels: intersection, vertical
//! partitioning, measure bounds, and the in-memory joins.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ssj_similarity::bitmap::overlap_upper_bound;
use ssj_similarity::intersect::{
    intersect_count_adaptive, intersect_count_at_least, intersect_count_chunked,
    intersect_count_gallop, intersect_count_hash, intersect_count_merge,
};
use ssj_similarity::Measure;
use ssj_text::TokenPool;
use std::hint::black_box;

fn sorted_set(seed: u64, len: usize, universe: u32) -> Vec<u32> {
    let mut state = seed;
    let mut v: Vec<u32> = (0..len * 2)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % universe
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn bench_intersection(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    g.sample_size(30);
    let a = sorted_set(1, 100, 10_000);
    let b = sorted_set(2, 100, 10_000);
    g.bench_function("merge_100x100", |bench| {
        bench.iter(|| intersect_count_merge(black_box(&a), black_box(&b)))
    });
    g.bench_function("gallop_100x100", |bench| {
        bench.iter(|| intersect_count_gallop(black_box(&a), black_box(&b)))
    });
    g.bench_function("hash_100x100", |bench| {
        bench.iter(|| intersect_count_hash(black_box(&a), black_box(&b)))
    });
    let small = sorted_set(3, 8, 100_000);
    let large = sorted_set(4, 4_000, 100_000);
    g.bench_function("merge_8x4000", |bench| {
        bench.iter(|| intersect_count_merge(black_box(&small), black_box(&large)))
    });
    g.bench_function("gallop_8x4000", |bench| {
        bench.iter(|| intersect_count_gallop(black_box(&small), black_box(&large)))
    });
    g.bench_function("adaptive_8x4000", |bench| {
        bench.iter(|| intersect_count_adaptive(black_box(&small), black_box(&large)))
    });
    g.bench_function("chunked_100x100", |bench| {
        bench.iter(|| intersect_count_chunked(black_box(&a), black_box(&b)))
    });
    let la = sorted_set(5, 4_000, 200_000);
    let lb = sorted_set(6, 4_000, 200_000);
    g.bench_function("merge_4000x4000", |bench| {
        bench.iter(|| intersect_count_merge(black_box(&la), black_box(&lb)))
    });
    g.bench_function("chunked_4000x4000", |bench| {
        bench.iter(|| intersect_count_chunked(black_box(&la), black_box(&lb)))
    });
    g.bench_function("adaptive_4000x4000", |bench| {
        bench.iter(|| intersect_count_adaptive(black_box(&la), black_box(&lb)))
    });
    g.finish();
}

/// Bitmap bound vs exact early-exit verification, across bitmap widths and
/// thresholds. Each width gets its own pool (the bitmap plane is built at
/// pool construction); θ sets the `min_overlap` target that both the bound
/// check and `intersect_count_at_least` race toward.
fn bench_bitmap_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_bound");
    g.sample_size(30);
    let a = sorted_set(11, 120, 30_000);
    let b = sorted_set(12, 120, 30_000);
    for bits in [128usize, 256, 512] {
        let mut pool = TokenPool::with_bitmap_bits(bits).unwrap();
        pool.push(&a);
        pool.push(&b);
        let (wa, wb) = (pool.bitmap_of(0).to_vec(), pool.bitmap_of(1).to_vec());
        g.bench_function(format!("upper_bound_{bits}b_120x120"), |bench| {
            bench.iter(|| overlap_upper_bound(black_box(&wa), black_box(&wb), a.len(), b.len()))
        });
    }
    for theta in [0.75, 0.85, 0.95] {
        let alpha = Measure::Jaccard.min_overlap(theta, a.len(), b.len());
        g.bench_function(format!("at_least_exact_120x120/{theta}"), |bench| {
            bench.iter(|| intersect_count_at_least(black_box(&a), black_box(&b), alpha))
        });
    }
    g.finish();
}

fn bench_vertical_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("vertical");
    g.sample_size(30);
    let tokens = sorted_set(7, 500, 50_000);
    let pivots: Vec<u32> = (1..16u32).map(|k| k * 3_000).collect();
    let mut pool = ssj_text::TokenPool::new();
    let span = pool.push(&tokens);
    g.bench_function("split_record_500tok_16frag", |bench| {
        bench.iter(|| {
            fsjoin::vertical::split_record(
                0,
                0,
                black_box(&tokens),
                black_box(span),
                black_box(&pivots),
            )
        })
    });
    g.finish();
}

fn bench_prefix_lengths(c: &mut Criterion) {
    let mut g = c.benchmark_group("measure");
    g.sample_size(30);
    g.bench_function("bounds_sweep", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for len in 1usize..200 {
                for m in Measure::all() {
                    acc += m.probe_prefix_len(black_box(0.8), len);
                    acc += m.min_overlap(black_box(0.8), len, len + 5);
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_inmemory_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("inmemory_join");
    g.sample_size(10);
    let collection = ssj_bench::bench_corpus();
    g.bench_function("ppjoin_bench_corpus", |bench| {
        bench.iter_batched(
            || collection.to_records(),
            |records| ssj_similarity::ppjoin::ppjoin_self_join(&records, Measure::Jaccard, 0.8),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("allpairs_bench_corpus", |bench| {
        bench.iter_batched(
            || collection.to_records(),
            |records| ssj_similarity::allpairs::allpairs_self_join(&records, Measure::Jaccard, 0.8),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_bitmap_bound,
    bench_vertical_partition,
    bench_prefix_lengths,
    bench_inmemory_joins
);
criterion_main!(benches);
