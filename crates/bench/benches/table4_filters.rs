//! Table IV (bench-scale): filter-configuration cost. Times the filter job
//! under the paper's six filter combinations; `expt table4` reports the
//! candidate counts.

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::{FilterSet, FsJoinConfig, JoinKernel};
use ssj_bench::bench_corpus;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let strl = FilterSet::STRL_ONLY;
    let combos: Vec<(&str, JoinKernel, FilterSet)> = vec![
        ("strl", JoinKernel::Loop, strl),
        (
            "strl_segl",
            JoinKernel::Loop,
            FilterSet { segl: true, ..strl },
        ),
        (
            "strl_segi",
            JoinKernel::Loop,
            FilterSet { segi: true, ..strl },
        ),
        (
            "strl_segd",
            JoinKernel::Loop,
            FilterSet { segd: true, ..strl },
        ),
        ("strl_prefix", JoinKernel::Prefix, strl),
        ("all", JoinKernel::Prefix, FilterSet::ALL),
    ];
    let mut g = c.benchmark_group("table4");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for (name, kernel, filters) in combos {
        g.bench_function(name, |b| {
            let cfg = FsJoinConfig::default()
                .with_theta(0.8)
                .with_kernel(kernel)
                .with_filters(filters);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg).candidates)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
