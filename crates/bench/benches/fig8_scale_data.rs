//! Figure 8 (bench-scale): FS-Join across data fractions.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_bench::{corpus, Scale};
use ssj_text::CorpusProfile;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let full = corpus(CorpusProfile::WikiLike, Scale::Small);
    let cfg = fsjoin::FsJoinConfig::default().with_theta(0.8);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for frac in [0.4, 0.7, 1.0] {
        let sample = full.sample(frac, 42);
        g.bench_function(format!("fsjoin_frac{frac}"), |b| {
            b.iter(|| fsjoin::run_self_join(black_box(&sample), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
