//! Ablation benches for the design choices DESIGN.md calls out:
//! exact FS-Join vs the FS-Join-PF variant, the emission-policy ablation,
//! and the global-ordering ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::{EmitPolicy, FsJoinConfig};
use ssj_bench::bench_corpus;
use ssj_text::{encode_with_kind, CorpusProfile, OrderingKind};
use std::hint::black_box;
use std::time::Duration;

fn bench_pf_variant(c: &mut Criterion) {
    let collection = bench_corpus();
    let cfg = FsJoinConfig::default().with_theta(0.8);
    let mut g = c.benchmark_group("ext_pf");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("fsjoin_exact", |b| {
        b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
    });
    g.bench_function("fsjoin_pf", |b| {
        b.iter(|| fsjoin::run_self_join_pf(black_box(&collection), &cfg))
    });
    g.finish();
}

fn bench_emit_policy(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("ext_emit_policy");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for (name, policy) in [
        ("exact", EmitPolicy::Exact),
        ("positive_bound_only", EmitPolicy::PositiveBoundOnly),
    ] {
        g.bench_function(name, |b| {
            let cfg = FsJoinConfig::default()
                .with_theta(0.8)
                .with_emit_policy(policy);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
    }
    g.finish();
}

fn bench_ordering_kinds(c: &mut Criterion) {
    let raw = CorpusProfile::WikiLike
        .config()
        .with_records(300)
        .generate();
    let mut g = c.benchmark_group("ext_ordering");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for kind in OrderingKind::all() {
        let collection = encode_with_kind(&raw, kind);
        g.bench_function(kind.name(), |b| {
            let cfg = FsJoinConfig::default().with_theta(0.8);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pf_variant,
    bench_emit_policy,
    bench_ordering_kinds
);
criterion_main!(benches);
