//! Lemma 5 (bench-scale): cost-model evaluation throughput (the model is
//! arithmetic over corpus statistics; this guards against it becoming
//! accidentally expensive, since experiments call it in sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::cost::{predict_cost, CostCoefficients, CostInputs};
use ssj_bench::bench_corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let pivots: Vec<u32> = (1..16u32).map(|k| k * 1000).collect();
    let mut g = c.benchmark_group("lemma5");
    g.sample_size(30);
    g.bench_function("cost_inputs_from_collection", |b| {
        b.iter(|| CostInputs::from_run(black_box(&collection), black_box(&pivots), 10_000, 500))
    });
    let inputs = CostInputs::from_run(&collection, &pivots, 10_000, 500);
    let coef = CostCoefficients::default();
    g.bench_function("predict_cost", |b| {
        b.iter(|| predict_cost(black_box(&inputs), black_box(&coef)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
