//! Figure 13 (bench-scale): FS-Join vs FS-Join-V.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_bench::bench_corpus;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("fsjoin", |b| {
        let cfg = fsjoin::FsJoinConfig::default().with_theta(0.8);
        b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
    });
    g.bench_function("fsjoin_v", |b| {
        let cfg = fsjoin::FsJoinConfig::default()
            .with_theta(0.8)
            .with_horizontal(0);
        b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
