//! Figure 6 (bench-scale): FS-Join vs RIDPairsPPJoin end-to-end.
//! The full-size comparison lives in `expt fig6`; this tracks regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_baselines::ridpairs::ridpairs_ppjoin;
use ssj_baselines::BaselineConfig;
use ssj_bench::bench_corpus;
use ssj_similarity::Measure;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for theta in [0.75, 0.9] {
        g.bench_function(format!("fsjoin_theta{theta}"), |b| {
            let cfg = fsjoin::FsJoinConfig::default().with_theta(theta);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
        g.bench_function(format!("ridpairs_theta{theta}"), |b| {
            let cfg = BaselineConfig::default();
            b.iter(|| ridpairs_ppjoin(black_box(&collection), Measure::Jaccard, theta, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
