//! Table III — dataset statistics of the three corpora.
//!
//! Paper: Email 517,401 records (long, highly variable); PubMed 7,400,308
//! records (avg 80.39 tokens); Wiki 4,305,022 records (avg 55.95 tokens).
//! Ours are scaled-down synthetic analogues preserving the *shape*
//! contrasts (Email ≫ avg length; PubMed/Wiki many short records).

use crate::datasets::{corpus, Scale};
use ssj_common::table::Table;
use ssj_text::CorpusProfile;

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut t = Table::new([
        "Dataset",
        "Records",
        "Distinct tokens",
        "Min len",
        "Max len",
        "Avg len",
    ]);
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let s = c.stats();
        t.push_row([
            profile.name().to_string(),
            s.records.to_string(),
            s.universe.to_string(),
            s.min_len.to_string(),
            s.max_len.to_string(),
            format!("{:.2}", s.avg_len),
        ]);
    }
    format!(
        "# Table III analogue — dataset statistics\n\n\
         Synthetic analogues of the paper's corpora (scaled ~300–600×; \
         Zipfian token frequencies, per-profile lognormal lengths, planted \
         near-duplicates).\n\n{}\n\
         Paper reference: Email avg length ≫ PubMed (80.39) > Wiki (55.95); \
         record counts PubMed > Wiki ≫ Email. Both orderings must hold \
         above.\n",
        t.to_markdown()
    )
}
