//! Extension — global-ordering ablation.
//!
//! §IV calls the choice of global ordering "important" but evaluates only
//! ascending frequency. Prefix filtering works under *any* total order
//! (results are asserted identical); the ordering decides how selective
//! prefixes and fragments are. Ascending frequency puts rare tokens in
//! prefixes (few collisions); descending is adversarial; lexicographic is
//! frequency-oblivious.

use fsjoin::FsJoinConfig;
use ssj_common::table::{fmt_count, Table};
use ssj_text::{encode_with_kind, CorpusProfile, OrderingKind};

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Extension — global-ordering ablation\n\n\
         θ = 0.8, Jaccard, Wiki (small); identical result sets asserted \
         across orderings. `examined` = segment pairs inspected by the \
         prefix kernel; `emitted` = candidate records.\n\n",
    );
    let base = CorpusProfile::WikiLike.config();
    let records = ((base.num_records as f64) * 0.12).round() as usize;
    let raw = base.with_records(records).generate();

    let mut t = Table::new(["Ordering", "examined", "emitted", "results"]);
    let mut result_counts = Vec::new();
    for kind in OrderingKind::all() {
        let c = encode_with_kind(&raw, kind);
        let res = fsjoin::run_self_join(&c, &FsJoinConfig::default().with_theta(0.8));
        result_counts.push(res.pairs.len());
        t.push_row([
            kind.name().to_string(),
            fmt_count(res.filter_stats.pairs_considered),
            fmt_count(res.candidates as u64),
            res.pairs.len().to_string(),
        ]);
    }
    assert!(
        result_counts.windows(2).all(|w| w[0] == w[1]),
        "orderings must not change results: {result_counts:?}"
    );
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nExpectation: ascending frequency examines the fewest pairs \
         (rare tokens in prefixes); descending is the adversarial \
         worst case; results are identical everywhere.\n",
    );
    out
}
