//! Lemma 5 — the FS-Join cost model, validated against measured runs.
//!
//! The lemma's value is its *growth shapes*: shuffle is linear in data
//! volume (no duplication), per-fragment join work is quadratic in the
//! per-fragment record count. We run FS-Join at four sample fractions and
//! compare measured wall-clock growth against the model's prediction,
//! both normalized to the smallest scale.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::runners::{run_algorithm_cfg, Algorithm};
use fsjoin::cost::{predict_cost, CostCoefficients, CostInputs};
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let full = corpus(CorpusProfile::WikiLike, Scale::Large);
    let coef = CostCoefficients::default();
    let mut rows = Vec::new();
    for frac in FRACTIONS {
        let sample = full.sample(frac, 0x1E44A5);
        let outcome = run_algorithm_cfg(
            Algorithm::FsJoin,
            &sample,
            Measure::Jaccard,
            0.8,
            10,
            &tuned_fsjoin(CorpusProfile::WikiLike),
        );
        // Reconstruct the effective pivots the driver used, to feed the
        // cost model the same fragment geometry.
        let res = fsjoin::run_self_join(&sample, &tuned_fsjoin(CorpusProfile::WikiLike));
        let inputs = CostInputs::from_run(&sample, &res.pivots, res.candidates, res.pairs.len());
        let predicted = predict_cost(&inputs, &coef);
        rows.push((frac, outcome.real_secs, predicted));
    }
    let (_, base_meas, base_pred) = rows[0];
    let mut t = Table::new([
        "fraction",
        "measured (s)",
        "predicted (s)",
        "measured ×",
        "predicted ×",
    ]);
    for (frac, meas, pred) in &rows {
        t.push_row([
            format!("{frac}"),
            format!("{meas:.2}"),
            format!("{pred:.3}"),
            format!("{:.2}", meas / base_meas),
            format!("{:.2}", pred / base_pred),
        ]);
    }
    format!(
        "# Lemma 5 — cost-model growth validation (Wiki)\n\n\
         θ = 0.8, Jaccard; \"×\" columns are normalized to the smallest \
         fraction. The model's default coefficients are not calibrated to \
         this machine, so absolute predictions are indicative — the check \
         is that measured and predicted *growth* agree.\n\n{}\n\
         Expectation: the two × columns track each other (within ~2×) \
         across a 4× data range.\n",
        t.to_markdown()
    )
}
