//! Figure 11 — effect of the pivot-selection strategy.
//!
//! Paper: Even-TF < Even-Interval < Random in running time, because
//! Even-TF equalizes fragment token mass and hence reduce-task load.
//! We also report the measured reduce-input skew that explains it.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::runners::{run_algorithm_cfg, Algorithm};
use fsjoin::PivotStrategy;
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 11 analogue — pivot-selection strategies\n\n\
         Simulated 10-node seconds at θ = 0.8, Jaccard; skew is max/mean of \
         per-reduce-task input bytes in the filter job.\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let mut t = Table::new(["Strategy", "time (s)", "reduce skew"]);
        for strategy in PivotStrategy::all() {
            let cfg = tuned_fsjoin(profile).with_pivot_strategy(strategy);
            let o = run_algorithm_cfg(Algorithm::FsJoin, &c, Measure::Jaccard, 0.8, 10, &cfg);
            t.push_row([
                strategy.name().to_string(),
                format!("{:.2}", o.sim_secs),
                format!("{:.2}", o.reduce_skew),
            ]);
        }
        out.push_str(&format!("## {}\n\n{}\n", profile.name(), t.to_markdown()));
    }
    out.push_str("Paper expectation: Even-TF fastest (best balance), Random worst.\n");
    out
}
