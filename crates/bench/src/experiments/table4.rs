//! Table IV — pruning power of each filter combination.
//!
//! The paper counts the records output by the filter job under StrL alone,
//! StrL + one segment filter each, StrL + prefix, and all filters, on
//! Email(10%), Wiki(1%) and PubMed(1%). We mirror those rows on the small
//! corpora with two measurements per row:
//!
//! * **examined** — segment pairs the fragment join inspected (where the
//!   Prefix kernel's pruning shows up);
//! * **emitted** — candidate records written by the filter job (only pairs
//!   with ≥ 1 common token are ever materialized here, so our absolute
//!   dynamic range is smaller than the paper's — they appear to count
//!   zero-overlap survivors too).
//!
//! Reproduction finding (proved in `fsjoin::filters` tests): with the
//! information available inside one reducer, SegI and SegD are the *same*
//! predicate, so their rows are identical by mathematics — the paper's
//! differing SegI/SegD counts imply their implementations used different
//! information for the two.

use crate::datasets::{corpus, Scale};
use fsjoin::{FilterSet, FsJoinConfig, JoinKernel};
use ssj_common::table::{fmt_count, Table};
use ssj_text::{Collection, CorpusProfile};

fn run_combo(c: &Collection, kernel: JoinKernel, filters: FilterSet) -> (u64, u64) {
    let cfg = FsJoinConfig::default()
        .with_theta(0.8)
        .with_kernel(kernel)
        .with_filters(filters);
    let res = fsjoin::run_self_join(c, &cfg);
    (res.filter_stats.pairs_considered, res.candidates as u64)
}

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let strl = FilterSet::STRL_ONLY;
    let rows: Vec<(&str, JoinKernel, FilterSet)> = vec![
        ("StrL", JoinKernel::Loop, strl),
        (
            "StrL + SegL",
            JoinKernel::Loop,
            FilterSet { segl: true, ..strl },
        ),
        (
            "StrL + SegI",
            JoinKernel::Loop,
            FilterSet { segi: true, ..strl },
        ),
        (
            "StrL + SegD",
            JoinKernel::Loop,
            FilterSet { segd: true, ..strl },
        ),
        ("StrL + Prefix", JoinKernel::Prefix, strl),
        ("All", JoinKernel::Prefix, FilterSet::ALL),
    ];

    let mut out = String::from(
        "# Table IV analogue — filter pruning power\n\n\
         θ = 0.8, Jaccard. `examined` = segment pairs inspected by the \
         fragment join; `emitted` = candidate records written (pairs with \
         ≥ 1 common token surviving the active filters).\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Small);
        let mut t = Table::new(["Filter", "examined", "emitted"]);
        for (label, kernel, filters) in &rows {
            let (examined, emitted) = run_combo(&c, *kernel, *filters);
            t.push_row([label.to_string(), fmt_count(examined), fmt_count(emitted)]);
        }
        out.push_str(&format!(
            "## {} (small)\n\n{}\n",
            profile.name(),
            t.to_markdown()
        ));
    }
    // Emission-policy ablation: what it takes to reach the paper's
    // Table IV magnitudes, and what it costs.
    out.push_str("## Emission-policy ablation (see `fsjoin::EmitPolicy`)\n\n");
    let mut t = Table::new([
        "Dataset",
        "emitted (Exact)",
        "emitted (PositiveBoundOnly)",
        "results (Exact)",
        "results (PBO)",
    ]);
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Small);
        let exact_cfg = FsJoinConfig::default().with_theta(0.8);
        let pbo_cfg = exact_cfg
            .clone()
            .with_emit_policy(fsjoin::EmitPolicy::PositiveBoundOnly);
        let exact = fsjoin::run_self_join(&c, &exact_cfg);
        let pbo = fsjoin::run_self_join(&c, &pbo_cfg);
        t.push_row([
            profile.name().to_string(),
            fmt_count(exact.candidates as u64),
            fmt_count(pbo.candidates as u64),
            exact.pairs.len().to_string(),
            pbo.pairs.len().to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nPaper expectation: every added filter shrinks the filter-job \
         output; the prefix filter slashes the *examined* pairs; \"All\" \
         is the smallest row. Divergences (both proved in code): (1) our \
         SegI and SegD rows are identical — with reducer-local information \
         the two lemmas are the same predicate (fsjoin::filters tests); \
         (2) the paper's output magnitudes (e.g. 6,840 records from 74k \
         abstracts) require dropping fragment contributions that exact \
         count-verification provably needs — the PositiveBoundOnly column \
         reproduces those magnitudes and the results column shows the \
         recall it costs.\n",
    );
    out
}
