//! Fault-tolerance experiment — makespan under injected failures.
//!
//! Runs a measured FS-Join once, then replays its task profile through the
//! fault-aware cluster simulator ([`ClusterModel::simulate_chain_faults`])
//! across failure rates and cluster sizes. Two questions, two tables:
//!
//! 1. How fast does makespan degrade with the injected failure rate, and
//!    how much of the straggler-bound tail does speculative execution win
//!    back? (5/10/15-node clusters, speculation off vs on.)
//! 2. What does map-output checkpointing save when nodes are lost during
//!    the reduce phase? (Re-fetch from materialized spills vs re-run the
//!    lost node's map tasks.)
//!
//! Every number is deterministic in the fault-plan seed; cluster-lost
//! seeds (every replica of the plan dies) are skipped and counted.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::runners::{run_algorithm_cfg, Algorithm};
use ssj_common::table::Table;
use ssj_faults::FaultPlan;
use ssj_mapreduce::{ClusterModel, SimFaultPolicy};
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const NODES: [usize; 3] = [5, 10, 15];
const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const SEEDS: std::ops::Range<u64> = 0..8;

/// Mean slowdown (faulty ÷ clean makespan) over the seed set; counts
/// cluster-lost seeds separately.
fn mean_slowdown(
    cluster: &ClusterModel,
    chain: &ssj_mapreduce::ChainMetrics,
    rate: f64,
    policy: &SimFaultPolicy,
) -> (f64, usize) {
    let mut total = 0.0;
    let mut ok = 0usize;
    let mut lost = 0usize;
    for seed in SEEDS {
        let plan = FaultPlan::chaos(seed, rate);
        match cluster.simulate_chain_faults(chain, &plan, policy) {
            Ok(out) => {
                total += out.slowdown();
                ok += 1;
            }
            Err(_) => lost += 1,
        }
    }
    (if ok > 0 { total / ok as f64 } else { f64::NAN }, lost)
}

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let profile = CorpusProfile::WikiLike;
    let c = corpus(profile, Scale::Small);
    let mut out = String::from(
        "# Fault tolerance — makespan under injected failures\n\n\
         FS-Join at θ = 0.8 (Jaccard, wiki-like corpus); measured task\n\
         profile replayed through the fault-aware cluster simulator.\n\
         Cells are mean makespan inflation over 8 seeds (1.00 = fault-free;\n\
         chaos plan: rate split 60/40 between errors and panics, plus an\n\
         equal rate of 4× stragglers).\n\n\
         ## Makespan inflation vs failure rate\n\n",
    );

    let mut t = Table::new(["Nodes", "Speculation", "0%", "2%", "5%", "10%"]);
    for &nodes in &NODES {
        let r = run_algorithm_cfg(
            Algorithm::FsJoin,
            &c,
            Measure::Jaccard,
            0.8,
            nodes,
            &tuned_fsjoin(profile),
        );
        let chain = r.chain.as_ref().expect("FS-Join completes");
        let cluster = ClusterModel::paper_default(nodes);
        for (label, policy) in [
            ("off", SimFaultPolicy::default()),
            ("on", SimFaultPolicy::speculative()),
        ] {
            let mut row = vec![nodes.to_string(), label.to_string()];
            for &rate in &RATES {
                let (slow, lost) = mean_slowdown(&cluster, chain, rate, &policy);
                let mark = if lost > 0 {
                    format!(" ({lost} lost)")
                } else {
                    String::new()
                };
                row.push(format!("{slow:.2}×{mark}"));
            }
            t.push_row([
                row[0].clone(),
                row[1].clone(),
                row[2].clone(),
                row[3].clone(),
                row[4].clone(),
                row[5].clone(),
            ]);
        }
    }
    out.push_str(&t.to_markdown());

    out.push_str(
        "\nSpeculation cannot help with the error/panic share (those\n\
         attempts must be retried) but it clips the straggler tail, so the\n\
         \"on\" rows should sit at or below their \"off\" siblings at every\n\
         rate — the gap widens with the rate as 4× stragglers dominate the\n\
         critical path.\n\n\
         ## Node loss — checkpointed map outputs vs map re-runs\n\n",
    );

    let nodes = 10;
    let r = run_algorithm_cfg(
        Algorithm::FsJoin,
        &c,
        Measure::Jaccard,
        0.8,
        nodes,
        &tuned_fsjoin(profile),
    );
    let chain = r.chain.as_ref().expect("FS-Join completes");
    let cluster = ClusterModel::paper_default(nodes);
    let mut t2 = Table::new([
        "Loss rate",
        "Checkpointed slowdown",
        "Re-map slowdown",
        "Map re-runs",
    ]);
    for loss in [0.05, 0.10, 0.20] {
        let mut ck = (0.0, 0usize);
        let mut rm = (0.0, 0usize);
        let mut reruns = 0u64;
        for seed in SEEDS {
            let plan = FaultPlan::new(seed).with_node_loss(loss);
            let with = SimFaultPolicy {
                checkpoint_map_outputs: true,
                ..SimFaultPolicy::default()
            };
            let without = SimFaultPolicy {
                checkpoint_map_outputs: false,
                ..SimFaultPolicy::default()
            };
            if let Ok(o) = cluster.simulate_chain_faults(chain, &plan, &with) {
                ck.0 += o.slowdown();
                ck.1 += 1;
            }
            if let Ok(o) = cluster.simulate_chain_faults(chain, &plan, &without) {
                rm.0 += o.slowdown();
                rm.1 += 1;
                reruns += o.map_reruns;
            }
        }
        t2.push_row([
            format!("{:.0}%", loss * 100.0),
            format!("{:.2}×", ck.0 / ck.1.max(1) as f64),
            format!("{:.2}×", rm.0 / rm.1.max(1) as f64),
            reruns.to_string(),
        ]);
    }
    out.push_str(&t2.to_markdown());
    out.push_str(
        "\nHadoop 0.20.2 materializes map output on local disk and lets\n\
         reducers re-fetch it after a failed attempt; only losing the\n\
         *node* forces map re-execution. The checkpointed column models\n\
         the re-fetch path (our `SpillStore`); the re-map column pays the\n\
         Hadoop-without-spills price.\n",
    );
    out
}
