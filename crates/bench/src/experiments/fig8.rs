//! Figure 8 — FS-Join scalability with data size (4X/6X/8X/10X).
//!
//! Paper: doubling the data increases time by less than ~33% in most
//! cases at fixed θ (filters absorb much of the quadratic candidate
//! growth).

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::report::secs_cell;
use crate::runners::{run_algorithm_cfg, Algorithm};
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const SCALES: [(f64, &str); 4] = [(0.4, "4X"), (0.6, "6X"), (0.8, "8X"), (1.0, "10X")];
const THETAS: [f64; 4] = [0.75, 0.8, 0.85, 0.9];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 8 analogue — FS-Join vs data scale\n\n\
         Simulated 10-node cluster seconds, Jaccard; NX = random sample of \
         N·10% of the reference corpus (the paper's sampling scheme).\n\n",
    );
    for profile in CorpusProfile::all() {
        let full = corpus(profile, Scale::Large);
        let mut t = Table::new(
            std::iter::once("θ".to_string()).chain(SCALES.iter().map(|(_, n)| n.to_string())),
        );
        for theta in THETAS {
            let mut cells = vec![format!("{theta}")];
            for (frac, _) in SCALES {
                let sample = full.sample(frac, 0xF168);
                let o = run_algorithm_cfg(
                    Algorithm::FsJoin,
                    &sample,
                    Measure::Jaccard,
                    theta,
                    10,
                    &tuned_fsjoin(profile),
                );
                cells.push(secs_cell(o.sim_secs));
            }
            t.push_row(cells);
        }
        out.push_str(&format!("## {}\n\n{}\n", profile.name(), t.to_markdown()));
    }
    out.push_str(
        "Paper expectation: time grows clearly sub-quadratically in data \
         size; 2X data ⇒ well under 2X time at the same θ.\n",
    );
    out
}
