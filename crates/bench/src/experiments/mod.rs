//! One module per paper exhibit (see DESIGN.md §6 for the index).

pub mod ext_ordering;
pub mod ext_pf;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lemma5;
pub mod table1;
pub mod table3;
pub mod table4;

/// All experiment ids, in the paper's presentation order.
pub const ALL: [&str; 15] = [
    "table1",
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "lemma5",
    "ext-pf",
    "ext-ordering",
    "faults",
];

/// Run one experiment by id, returning its markdown report.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "table1" => table1::run(),
        "table3" => table3::run(),
        "table4" => table4::run(),
        "fig6" => fig6::run(),
        "fig7" => fig7::run(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "lemma5" => lemma5::run(),
        "ext-pf" => ext_pf::run(),
        "ext-ordering" => ext_ordering::run(),
        "faults" => faults::run(),
        _ => return None,
    })
}
