//! Figure 6 — FS-Join vs RIDPairsPPJoin on the big datasets.
//!
//! Paper: FS-Join wins on every dataset and threshold, by ~5× at θ = 0.9
//! and ~10× at θ = 0.75 (lower θ ⇒ longer prefixes ⇒ more duplication for
//! RIDPairsPPJoin). MassJoin and V-Smart-Join do not finish on the big
//! datasets; we report their budget-guard DNFs the same way.
//!
//! We report three views because our corpora are ~500× smaller than the
//! paper's (DESIGN.md §1): the pure cluster model (1 Gbit/s, no platform
//! overhead), a Hadoop-0.20-calibrated model (effective shuffle throughput
//! and per-record JVM cost — the platform the paper measured on), and the
//! scale-robust structural quantities (shuffle volume ratio), where
//! FS-Join's duplicate-freedom is visible at any scale.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::report::secs_cell;
use crate::runners::{run_algorithm, run_algorithm_cfg, Algorithm};
use ssj_common::table::{fmt_bytes, Table};
use ssj_mapreduce::ClusterModel;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const THETAS: [f64; 5] = [0.75, 0.8, 0.85, 0.9, 0.95];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let hadoop = ClusterModel::hadoop_2010(10);
    let mut out = String::from(
        "# Figure 6 analogue — big datasets, FS-Join vs RIDPairsPPJoin\n\n\
         10-node simulation, Jaccard; \"pure\" = 1 Gbit/s + zero platform \
         overhead, \"hadoop\" = Hadoop-0.20 calibration (25 MB/s effective \
         shuffle, 8 µs/record). FS-Join uses the paper's partitioning \
         (30 fragments; 10/70/50 horizontal partitions per dataset).\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let tuned = tuned_fsjoin(profile);
        let mut t = Table::new([
            "θ",
            "FS-Join pure (s)",
            "RIDPairs pure (s)",
            "FS-Join hadoop (s)",
            "RIDPairs hadoop (s)",
            "shuffle FS / RID",
        ]);
        for theta in THETAS {
            let fs = run_algorithm_cfg(Algorithm::FsJoin, &c, Measure::Jaccard, theta, 10, &tuned);
            let rid = run_algorithm(Algorithm::RidPairs, &c, Measure::Jaccard, theta, 10);
            assert_eq!(
                fs.result_pairs, rid.result_pairs,
                "algorithms must agree ({profile:?} θ={theta})"
            );
            t.push_row([
                format!("{theta}"),
                secs_cell(fs.sim_secs),
                secs_cell(rid.sim_secs),
                secs_cell(fs.sim_secs_on(&hadoop)),
                secs_cell(rid.sim_secs_on(&hadoop)),
                format!(
                    "{} / {}",
                    fmt_bytes(fs.shuffle_bytes),
                    fmt_bytes(rid.shuffle_bytes)
                ),
            ]);
        }
        out.push_str(&format!(
            "## {} (large)\n\n{}\n",
            profile.name(),
            t.to_markdown()
        ));
        // The paper notes MassJoin / V-Smart-Join cannot run at this scale.
        let mj = run_algorithm(Algorithm::MassJoinMerge, &c, Measure::Jaccard, 0.8, 10);
        let vs = run_algorithm(Algorithm::VSmart, &c, Measure::Jaccard, 0.8, 10);
        out.push_str(&format!(
            "At θ=0.8: MassJoin(Merge) → {:?}; V-Smart-Join → {:?}.\n\n",
            mj.status, vs.status
        ));
    }
    out.push_str(
        "Paper expectation: FS-Join wins everywhere; its advantage grows as \
         θ decreases (≈5× at 0.9, ≈10× at 0.75 on Email). At our ~500× \
         smaller scale the duplication penalty (linear in data) shrinks \
         faster than join work, so the calibrated columns and the shuffle \
         ratio carry the regime comparison.\n",
    );
    out
}
