//! Figure 10 — effect of the number of horizontal partitions, and the
//! filter-phase vs verification-phase time split.
//!
//! Paper: more horizontal partitions reduce overall time, and the filter
//! phase dominates the verification phase (the filters having already
//! pruned most false positives).

use crate::datasets::{corpus, Scale};
use crate::runners::{run_algorithm_cfg, Algorithm};
use fsjoin::FsJoinConfig;
use ssj_common::table::Table;
use ssj_mapreduce::ClusterModel;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const H_PIVOTS: [usize; 4] = [2, 5, 15, 35];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let cluster = ClusterModel::paper_default(10);
    let mut out = String::from(
        "# Figure 10 analogue — horizontal partition count and phase split\n\n\
         Simulated 10-node seconds at θ = 0.8, Jaccard. `filter` / `verify` \
         are the two FS-Join jobs.\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let mut t = Table::new(["# h-pivots", "filter (s)", "verify (s)", "total (s)"]);
        for t_pivots in H_PIVOTS {
            let cfg = FsJoinConfig::default()
                .with_fragments(30)
                .with_horizontal(t_pivots);
            let o = run_algorithm_cfg(Algorithm::FsJoin, &c, Measure::Jaccard, 0.8, 10, &cfg);
            let chain = o.chain.expect("completed");
            let filter = cluster.simulate_job(chain.job("fsjoin-filter").unwrap());
            let verify = cluster.simulate_job(chain.job("fsjoin-verify").unwrap());
            t.push_row([
                t_pivots.to_string(),
                format!("{:.2}", filter.total_secs()),
                format!("{:.2}", verify.total_secs()),
                format!("{:.2}", filter.total_secs() + verify.total_secs()),
            ]);
        }
        out.push_str(&format!("## {}\n\n{}\n", profile.name(), t.to_markdown()));
    }
    out.push_str(
        "Paper expectation: total time falls as horizontal partitions \
         increase; the filter phase costs far more than verification.\n",
    );
    out
}
