//! Figure 12 — effect of the fragment join kernel (Loop / Index / Prefix).
//!
//! Paper: Prefix wins everywhere, by about 2× over Loop and Index on the
//! long-record Email dataset.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::runners::{run_algorithm_cfg, Algorithm};
use fsjoin::JoinKernel;
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 12 analogue — fragment join kernels\n\n\
         Simulated 10-node seconds at θ = 0.8, Jaccard. All kernels apply \
         the same filters; they differ only in how fragment segment pairs \
         are discovered and counted.\n\n",
    );
    let mut t = Table::new(["Dataset", "Loop (s)", "Index (s)", "Prefix (s)"]);
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let mut cells = vec![profile.name().to_string()];
        let mut results = Vec::new();
        for kernel in JoinKernel::all() {
            let cfg = tuned_fsjoin(profile).with_kernel(kernel);
            let o = run_algorithm_cfg(Algorithm::FsJoin, &c, Measure::Jaccard, 0.8, 10, &cfg);
            results.push(o.result_pairs);
            cells.push(format!("{:.2}", o.sim_secs));
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "kernels disagree on {profile:?}: {results:?}"
        );
        t.push_row(cells);
    }
    out.push_str(&t.to_markdown());
    out.push_str("\nPaper expectation: Prefix fastest, ~2× over Loop/Index on Email.\n");
    out
}
