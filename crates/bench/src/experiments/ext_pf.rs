//! Extension — FS-Join-PF (prefix-discovery variant, ours) vs exact
//! FS-Join and RIDPairsPPJoin.
//!
//! DESIGN.md §4 item 5b shows exact count-verification forces FS-Join's
//! intermediate volume to grow with co-token pair count; FS-Join-PF keeps
//! the paper's partitioning but discovers candidates through global-prefix
//! tokens and verifies against a record cache, restoring classic
//! prefix-filter candidate volumes while remaining exact (oracle-tested).

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::runners::{run_algorithm, Algorithm};
use fsjoin::run_self_join_pf;
use ssj_common::table::{fmt_bytes, Table};
use ssj_mapreduce::ClusterModel;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;
use std::time::Instant;

const THETAS: [f64; 3] = [0.75, 0.8, 0.9];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let cluster = ClusterModel::paper_default(10);
    let mut out = String::from(
        "# Extension — FS-Join-PF (prefix discovery + cached verification)\n\n\
         Simulated 10-node seconds, Jaccard; candidates = records emitted \
         by the discovery/filter job. FS-Join-PF trades the paper's \
         \"verification never touches records\" property for classic \
         prefix-filter intermediate volumes; results are identical \
         (asserted).\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let tuned = tuned_fsjoin(profile);
        let mut t = Table::new([
            "θ",
            "FS-Join (s)",
            "FS-Join-PF (s)",
            "RIDPairs (s)",
            "candidates FS / PF",
            "shuffle FS / PF",
        ]);
        for theta in THETAS {
            let fs = crate::runners::run_algorithm_cfg(
                Algorithm::FsJoin,
                &c,
                Measure::Jaccard,
                theta,
                10,
                &tuned,
            );
            let start = Instant::now();
            let pf = run_self_join_pf(&c, &tuned.clone().with_theta(theta).with_tasks(20, 30));
            let _pf_real = start.elapsed();
            let rid = run_algorithm(Algorithm::RidPairs, &c, Measure::Jaccard, theta, 10);
            assert_eq!(fs.result_pairs, pf.pairs.len(), "{profile:?} θ={theta}");
            assert_eq!(fs.result_pairs, rid.result_pairs, "{profile:?} θ={theta}");
            let fs_candidates = fs
                .chain
                .as_ref()
                .map_or(0, |ch| ch.jobs[0].reduce_output_records());
            t.push_row([
                format!("{theta}"),
                format!("{:.2}", fs.sim_secs),
                format!("{:.2}", pf.simulated_secs(&cluster)),
                format!("{:.2}", rid.sim_secs),
                format!("{} / {}", fs_candidates, pf.candidates),
                format!(
                    "{} / {}",
                    fmt_bytes(fs.shuffle_bytes),
                    fmt_bytes(pf.chain.total_shuffle_bytes())
                ),
            ]);
        }
        out.push_str(&format!(
            "## {} (large)\n\n{}\n",
            profile.name(),
            t.to_markdown()
        ));
    }
    out.push_str(
        "Expectation: FS-Join-PF collapses the candidate volume (orders of \
         magnitude on the short-record Zipf corpora) and becomes \
         competitive with RIDPairsPPJoin at every scale, while keeping \
         FS-Join's balanced, duplication-light map phase.\n",
    );
    out
}
