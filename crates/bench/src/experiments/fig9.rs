//! Figure 9 — FS-Join scalability with cluster size (5/10/15 nodes).
//!
//! Paper: 5 → 10 nodes cuts time 35–48%; 10 → 15 only 10–20% more (shuffle
//! overhead and stragglers eat into the gains). Each node count re-runs
//! the join with `reduce_tasks = 3 × nodes` (the paper's setting) and
//! schedules the measured tasks on a cluster model of that size.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::report::secs_cell;
use crate::runners::{run_algorithm_cfg, Algorithm};
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const NODES: [usize; 3] = [5, 10, 15];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 9 analogue — FS-Join vs cluster size\n\n\
         Simulated cluster seconds at θ = 0.8, Jaccard; reduce tasks = \
         3 × nodes.\n\n",
    );
    let mut t = Table::new([
        "Dataset",
        "5 nodes",
        "10 nodes",
        "15 nodes",
        "Δ(5→10)",
        "Δ(10→15)",
    ]);
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let secs: Vec<f64> = NODES
            .iter()
            .map(|&n| {
                run_algorithm_cfg(
                    Algorithm::FsJoin,
                    &c,
                    Measure::Jaccard,
                    0.8,
                    n,
                    &tuned_fsjoin(profile),
                )
                .sim_secs
            })
            .collect();
        let drop1 = 100.0 * (1.0 - secs[1] / secs[0]);
        let drop2 = 100.0 * (1.0 - secs[2] / secs[1]);
        t.push_row([
            profile.name().to_string(),
            secs_cell(secs[0]),
            secs_cell(secs[1]),
            secs_cell(secs[2]),
            format!("-{drop1:.0}%"),
            format!("-{drop2:.0}%"),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nPaper expectation: large gain from 5→10 nodes (−35…48%), \
         diminishing returns from 10→15 (−10…20%).\n",
    );
    out
}
