//! Figure 13 — FS-Join vs FS-Join-V (horizontal partitioning on/off).
//!
//! Paper: FS-Join (with horizontal partitioning) beats FS-Join-V on every
//! dataset and threshold — smaller sections fit reduce memory and the
//! length-based split prunes cross-length pairs before they reach the
//! fragment joins.

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::report::secs_cell;
use crate::runners::{run_algorithm_cfg, Algorithm};
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const THETAS: [f64; 4] = [0.75, 0.8, 0.85, 0.9];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 13 analogue — effect of horizontal partitioning\n\n\
         Simulated 10-node seconds, Jaccard. FS-Join-V disables horizontal \
         partitioning (vertical only).\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Large);
        let mut t = Table::new(["θ", "FS-Join (s)", "FS-Join-V (s)", "gain"]);
        for theta in THETAS {
            let fs = run_algorithm_cfg(
                Algorithm::FsJoin,
                &c,
                Measure::Jaccard,
                theta,
                10,
                &tuned_fsjoin(profile),
            );
            let fsv = run_algorithm_cfg(
                Algorithm::FsJoinV,
                &c,
                Measure::Jaccard,
                theta,
                10,
                &tuned_fsjoin(profile),
            );
            assert_eq!(fs.result_pairs, fsv.result_pairs, "{profile:?} θ={theta}");
            t.push_row([
                format!("{theta}"),
                secs_cell(fs.sim_secs),
                secs_cell(fsv.sim_secs),
                format!("{:.2}x", fsv.sim_secs / fs.sim_secs),
            ]);
        }
        out.push_str(&format!("## {}\n\n{}\n", profile.name(), t.to_markdown()));
    }
    out.push_str("Paper expectation: FS-Join ≤ FS-Join-V at every point.\n");
    out
}
