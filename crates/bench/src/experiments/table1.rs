//! Table I — qualitative comparison of the four algorithms, quantified.
//!
//! The paper's Table I claims FS-Join alone avoids duplication and
//! guarantees load balancing. We measure both on the small Wiki analogue
//! at θ = 0.8:
//!
//! * **token duplication** — how many times each input token crosses the
//!   first (signature/filter) job's shuffle, computed exactly from each
//!   algorithm's wire format (payload bytes ÷ 4 ÷ input tokens). This
//!   isolates true duplication from per-record metadata overhead.
//! * **reduce skew** — max/mean of per-reduce-task input bytes.
//!
//! FS-Join's vertical partitioning ships every token exactly once;
//! horizontal partitioning adds only the bounded boundary-window
//! memberships. RIDPairsPPJoin re-ships whole records per prefix token;
//! MassJoin per signature; V-Smart-Join ships each token once but then
//! materializes every posting-list pair (visible in total shuffle).

use crate::datasets::{corpus, Scale};
use crate::runners::{run_algorithm, Algorithm, RunStatus};
use ssj_common::table::Table;
use ssj_mapreduce::JobMetrics;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

/// Tokens crossing a job's shuffle, recovered from its byte/record
/// counters given the per-record metadata overhead of its wire format.
fn tokens_shuffled(job: &JobMetrics, per_record_overhead: usize) -> f64 {
    let payload = job
        .shuffle_bytes
        .saturating_sub(per_record_overhead * job.shuffle_records);
    payload as f64 / 4.0
}

/// Per-record metadata overhead (bytes) of each algorithm's first job:
/// everything in a shuffled record except 4-byte token payload entries.
fn first_job_overhead(algo: Algorithm) -> usize {
    match algo {
        // cell key 4 + rid 4 + side 1 + len/head/tail 12 + vec prefix 4
        Algorithm::FsJoin | Algorithm::FsJoinV => 25,
        // token key 4 + rid 4 + vec prefix 4
        Algorithm::RidPairs => 12,
        // token key 4 (itself the payload) + (rid, len) value 8
        Algorithm::VSmart => 8,
        // sig key (len 4 + idx 4 + vec prefix 4) + value (role 1 + rid 4 +
        // len 4 + vec prefix 4)
        Algorithm::MassJoinMerge | Algorithm::MassJoinLight => 25,
    }
}

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let c = corpus(CorpusProfile::WikiLike, Scale::Small);
    let total_tokens: usize = c.total_tokens() as usize;
    let mut t = Table::new([
        "Algorithm",
        "Token duplication",
        "Reduce skew (max/mean)",
        "Jobs",
        "Total shuffle (MiB)",
    ]);
    for algo in Algorithm::all_five() {
        let out = run_algorithm(algo, &c, Measure::Jaccard, 0.8, 10);
        match out.status {
            RunStatus::Ok => {
                let chain = out.chain.as_ref().expect("completed");
                let first = chain.jobs.first().expect("non-empty");
                let dup = tokens_shuffled(first, first_job_overhead(algo)) / total_tokens as f64;
                t.push_row([
                    out.algorithm.to_string(),
                    format!("{dup:.2}"),
                    format!("{:.2}", out.reduce_skew),
                    chain.jobs.len().to_string(),
                    format!("{:.2}", out.shuffle_bytes as f64 / (1 << 20) as f64),
                ]);
            }
            RunStatus::Dnf(reason) => {
                t.push_row([
                    out.algorithm.to_string(),
                    "DNF".into(),
                    "DNF".into(),
                    "-".into(),
                    reason,
                ]);
            }
        }
    }
    format!(
        "# Table I analogue — duplication and load balancing, measured\n\n\
         Wiki (small), θ = 0.8, Jaccard, default FS-Join partitioning \
         (16 fragments, 4 horizontal pivots — the tuned large-corpus \
         settings would only add boundary memberships here).\n\n{}\n\
         Paper expectation: only FS-Join avoids duplicating tokens \
         (vertical partitioning ships each exactly once; the small excess \
         over 1.0 is horizontal boundary membership); RIDPairsPPJoin \
         re-ships records per prefix token; MassJoin's signature expansion \
         dwarfs everyone; V-Smart-Join ships tokens once but explodes in \
         its pair-enumeration shuffle (total column).\n",
        t.to_markdown()
    )
}
