//! Figure 7 — all five algorithms on the small datasets.
//!
//! Paper: on sampled-down corpora every algorithm can (mostly) finish;
//! FS-Join and RIDPairsPPJoin are close, MassJoin(Merge) is slowest
//! (>100× on Email at low θ), Merge+Light beats Merge, V-Smart-Join is
//! worst where it runs and θ-insensitive. DNF rows mark budget-guard
//! aborts (our single machine stands in for their 11-node cluster).

use crate::datasets::{corpus, tuned_fsjoin, Scale};
use crate::report::secs_cell;
use crate::runners::{run_algorithm, run_algorithm_cfg, Algorithm, RunStatus};
use ssj_common::table::Table;
use ssj_similarity::Measure;
use ssj_text::CorpusProfile;

const THETAS: [f64; 4] = [0.75, 0.8, 0.85, 0.9];

/// Run the experiment; returns markdown.
pub fn run() -> String {
    let mut out = String::from(
        "# Figure 7 analogue — small datasets, all five algorithms\n\n\
         Simulated 10-node cluster seconds, Jaccard. DNF = exceeded the \
         intermediate-byte budget (the paper's \"cannot run completely\").\n\n",
    );
    for profile in CorpusProfile::all() {
        let c = corpus(profile, Scale::Small);
        let mut t = Table::new(
            std::iter::once("θ".to_string())
                .chain(Algorithm::all_five().iter().map(|a| a.name().to_string())),
        );
        for theta in THETAS {
            let mut cells = vec![format!("{theta}")];
            let mut ok_counts: Vec<usize> = Vec::new();
            for algo in Algorithm::all_five() {
                let o = if algo == Algorithm::FsJoin {
                    run_algorithm_cfg(
                        algo,
                        &c,
                        Measure::Jaccard,
                        theta,
                        10,
                        &tuned_fsjoin(profile),
                    )
                } else {
                    run_algorithm(algo, &c, Measure::Jaccard, theta, 10)
                };
                if let RunStatus::Ok = o.status {
                    ok_counts.push(o.result_pairs);
                }
                cells.push(secs_cell(o.sim_secs));
            }
            assert!(
                ok_counts.windows(2).all(|w| w[0] == w[1]),
                "result disagreement on {profile:?} θ={theta}: {ok_counts:?}"
            );
            t.push_row(cells);
        }
        out.push_str(&format!(
            "## {} (small)\n\n{}\n",
            profile.name(),
            t.to_markdown()
        ));
    }
    out.push_str(
        "Paper expectation: FS-Join ≈ RIDPairsPPJoin (small data), both far \
         ahead of MassJoin and V-Smart-Join; Merge+Light < Merge; V-Smart \
         barely varies with θ.\n",
    );
    out
}
