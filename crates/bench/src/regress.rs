//! Perf-regression reports: `BENCH_<name>.json` emit / load / compare.
//!
//! A [`BenchReport`] captures one probe workload as (a) a machine-portable
//! wall-clock measure — seconds divided by a calibration unit measured on
//! the same machine right before the workload, so a faster box produces
//! the same `wall_units` as a slower one — and (b) exact logical counters
//! (shuffled bytes, candidates, kernel work) that must not drift at all
//! under a fixed seed. `scripts/ci.sh` runs the `bench_probe` binary in
//! `--check` mode against baselines committed under `results/bench/`:
//! wall regressions beyond a noise tolerance fail the gate, and any
//! logical-counter change fails it outright (an intended change means
//! regenerating the baseline with `--out`).

use ssj_observe::json::{escape, fmt_f64, Value};

/// Default wall-clock noise tolerance: the gate fails when the measured
/// `wall_units` exceeds the baseline by more than this fraction. Generous
/// because CI boxes are noisy; an injected 2× slowdown still trips it
/// with 2× headroom.
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.5;

/// One probe workload's result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Workload name (also names the file: `BENCH_<name>.json`).
    pub name: String,
    /// Wall seconds of the workload divided by the calibration unit.
    pub wall_units: f64,
    /// Exact logical counters, sorted by key.
    pub counters: Vec<(String, f64)>,
}

impl BenchReport {
    /// File name this report is stored under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize (stable key order; counters pre-sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!(
            "  \"wall_units\": {},\n",
            fmt_f64(self.wall_units)
        ));
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), fmt_f64(*v)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a report written by [`Self::to_json`].
    pub fn parse(doc: &str) -> Result<BenchReport, String> {
        let v = Value::parse(doc)?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("report missing \"name\"")?
            .to_string();
        let wall_units = v
            .get("wall_units")
            .and_then(Value::as_f64)
            .ok_or("report missing \"wall_units\"")?;
        let mut counters: Vec<(String, f64)> = v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("report missing \"counters\"")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| format!("counter {k:?} is not a number"))
            })
            .collect::<Result<_, _>>()?;
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(BenchReport {
            name,
            wall_units,
            counters,
        })
    }

    /// Compare `self` (the fresh run) against `base` (the committed
    /// baseline). Returns human-readable failures; empty = pass.
    ///
    /// * `wall_units` may exceed the baseline by at most `wall_tolerance`
    ///   (fractional). Improvements always pass.
    /// * Every baseline counter must be present and **exactly** equal —
    ///   probe workloads are seeded, so logical quantities are
    ///   deterministic and any drift is a behavior change, not noise.
    pub fn compare_against(&self, base: &BenchReport, wall_tolerance: f64) -> Vec<String> {
        let mut failures = Vec::new();
        let limit = base.wall_units * (1.0 + wall_tolerance);
        if self.wall_units > limit || self.wall_units.is_nan() {
            failures.push(format!(
                "{}: wall regression {:.3} units vs baseline {:.3} (limit {:.3}, +{:.0}%)",
                self.name,
                self.wall_units,
                base.wall_units,
                limit,
                wall_tolerance * 100.0
            ));
        }
        for (key, want) in &base.counters {
            match self.counters.iter().find(|(k, _)| k == key) {
                None => failures.push(format!("{}: counter {key:?} disappeared", self.name)),
                Some((_, got)) if got != want => failures.push(format!(
                    "{}: counter {key:?} changed: {got} vs baseline {want}",
                    self.name
                )),
                Some(_) => {}
            }
        }
        failures
    }
}

/// Measure the calibration unit: wall seconds of a fixed, deterministic,
/// CPU-bound workload (min of three runs — the min is the least noisy
/// location estimate for a quiet machine). Dividing a workload's wall
/// time by this unit cancels the machine's single-core speed, making
/// committed baselines portable across hosts.
pub fn calibrate_unit_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        std::hint::black_box(xorshift_sum(20_000_000));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn xorshift_sum(iters: u64) -> u64 {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    let mut acc = 0u64;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall: f64) -> BenchReport {
        BenchReport {
            name: "probe".into(),
            wall_units: wall,
            counters: vec![
                ("fsjoin.candidates".into(), 123.0),
                ("mr.shuffle.bytes".into(), 4096.0),
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(2.5);
        assert_eq!(BenchReport::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn wall_tolerance_gates_regressions() {
        let base = report(1.0);
        // Within tolerance and improvements pass.
        assert!(report(1.4).compare_against(&base, 0.5).is_empty());
        assert!(report(0.2).compare_against(&base, 0.5).is_empty());
        // A 2x slowdown fails.
        let failures = report(2.0).compare_against(&base, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall regression"));
    }

    #[test]
    fn logical_counters_must_match_exactly() {
        let base = report(1.0);
        let mut cur = report(1.0);
        cur.counters[0].1 = 124.0;
        let failures = cur.compare_against(&base, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("fsjoin.candidates"));
        // A missing counter also fails.
        let mut gone = report(1.0);
        gone.counters.remove(0);
        assert_eq!(gone.compare_against(&base, 0.5).len(), 1);
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let unit = calibrate_unit_secs();
        assert!(unit.is_finite() && unit > 0.0);
    }
}
