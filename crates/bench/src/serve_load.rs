//! Closed-loop latency harness for the serving plane.
//!
//! A closed loop fixes the *concurrency*, not the arrival rate: `C`
//! worker threads each issue their next query the moment the previous one
//! returns, so the measured throughput is the index's sustained QPS at
//! that concurrency and the latency distribution is not inflated by
//! coordinated omission (there is no schedule to fall behind).
//!
//! Workers keep thread-local [`ProbeStats`] and a thread-local
//! [`LogHistogram`] of per-query latencies (microseconds); both are merged
//! after the run, so the hot loop touches no shared state except the
//! index's immutable structure. Queries are assigned round-robin
//! (`i % C`), making the *work partition* — though not the interleaving —
//! deterministic for a given `(queries, C)`.

use std::time::Instant;

use ssj_observe::LogHistogram;
use ssj_serve::{ProbeStats, ServeIndex};
use ssj_text::TokenId;

/// Outcome of one closed-loop run.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Worker threads.
    pub concurrency: usize,
    /// Queries answered.
    pub queries: u64,
    /// Similar records returned across all queries.
    pub results: u64,
    /// Wall time of the whole loop, seconds.
    pub wall_secs: f64,
    /// Sustained throughput: `queries / wall_secs`.
    pub qps: f64,
    /// Merged per-query latency distribution, microseconds.
    pub latency_us: LogHistogram,
    /// Merged probe counters.
    pub stats: ProbeStats,
}

impl ServeLoadReport {
    /// Latency quantile in microseconds (`q ∈ [0, 1]`).
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency_us.quantile(q)
    }
}

/// Replay `queries` against `index` at threshold `theta` from
/// `concurrency` closed-loop workers. Probe counters and the query count
/// are flushed into the index registry (`serve.probe.*`); latency
/// quantiles come back in the report.
pub fn closed_loop(
    index: &ServeIndex,
    queries: &[Vec<TokenId>],
    theta: f64,
    concurrency: usize,
) -> ServeLoadReport {
    let concurrency = concurrency.max(1);
    let start = Instant::now();
    let locals: Vec<(ProbeStats, LogHistogram, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move || {
                    let mut stats = ProbeStats::default();
                    let mut latency = LogHistogram::default();
                    let mut results = 0u64;
                    for query in queries.iter().skip(worker).step_by(concurrency) {
                        let t0 = Instant::now();
                        let hits = index.probe_with(query, theta, None, &mut stats);
                        latency.record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        results += hits.len() as u64;
                    }
                    (stats, latency, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("closed-loop worker panicked"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut stats = ProbeStats::default();
    let mut latency_us = LogHistogram::default();
    let mut results = 0u64;
    for (s, l, r) in &locals {
        stats.add(s);
        latency_us.merge(l);
        results += r;
    }
    stats.record_to(index.registry());
    index
        .registry()
        .counter_add(fsjoin::keys::SERVE_PROBE_QUERIES, queries.len() as u64);

    ServeLoadReport {
        concurrency,
        queries: queries.len() as u64,
        results,
        wall_secs,
        qps: if wall_secs > 0.0 {
            queries.len() as f64 / wall_secs
        } else {
            0.0
        },
        latency_us,
        stats,
    }
}

/// Sample every `stride`-th non-empty record of the index as a probe
/// query — the standard replay workload (each query has at least one true
/// answer: itself).
pub fn replay_queries(index: &ServeIndex, stride: usize) -> Vec<Vec<TokenId>> {
    (0..index.len())
        .step_by(stride.max(1))
        .map(|rid| index.tokens_of(rid as u32).to_vec())
        .filter(|q| !q.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::bench_corpus;
    use ssj_serve::{build_index, ServeConfig};

    #[test]
    fn closed_loop_answers_every_query_at_any_concurrency() {
        let collection = bench_corpus();
        let index = build_index(&collection, &ServeConfig::default().with_theta_min(0.7));
        let queries = replay_queries(&index, 3);
        let single = closed_loop(&index, &queries, 0.8, 1);
        let multi = closed_loop(&index, &queries, 0.8, 4);
        assert_eq!(single.queries, queries.len() as u64);
        assert_eq!(multi.queries, single.queries);
        // Logical work is concurrency-invariant.
        assert_eq!(multi.stats, single.stats);
        assert_eq!(multi.results, single.results);
        assert_eq!(multi.latency_us.count(), single.latency_us.count());
        // Every replayed record matches itself.
        assert!(single.results >= single.queries);
        assert_eq!(
            index
                .registry()
                .counter_get(fsjoin::keys::SERVE_PROBE_QUERIES),
            2 * queries.len() as u64
        );
    }
}
