//! `bench_probe` — seeded perf probes emitting / checking `BENCH_*.json`.
//!
//! ```text
//! bench_probe --out results/bench              # (re)generate baselines
//! bench_probe --check results/bench            # gate: fail on regression
//! bench_probe --check results/bench --handicap 2.0   # gate self-test
//! ```
//!
//! Each probe runs a deterministic workload (fixed synthetic corpus,
//! fixed θ), measures wall time as the **min of five** runs normalized
//! by [`calibrate_unit_secs`] (machine-portable units), and captures the
//! workload's logical counters exactly. `--check` compares a fresh run
//! against the committed baselines with [`DEFAULT_WALL_TOLERANCE`] noise
//! headroom on wall units and zero tolerance on logical counters; see
//! `crates/bench/src/regress.rs` for the policy.
//!
//! `--handicap F` multiplies the measured wall units by `F` — CI uses
//! `--handicap 2.0` to prove the gate actually trips on a 2× slowdown.

use fsjoin::{FsJoinConfig, FsJoinResult};
use ssj_bench::regress::DEFAULT_WALL_TOLERANCE;
use ssj_bench::{calibrate_unit_secs, corpus, BenchReport, Scale};
use ssj_text::{Collection, CorpusProfile};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut out_dir: Option<PathBuf> = None;
    let mut check_dir: Option<PathBuf> = None;
    let mut handicap = 1.0f64;
    let mut tolerance = DEFAULT_WALL_TOLERANCE;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(d) => out_dir = Some(PathBuf::from(d)),
                None => return usage("--out requires a directory"),
            },
            "--check" => match args.next() {
                Some(d) => check_dir = Some(PathBuf::from(d)),
                None => return usage("--check requires a directory"),
            },
            "--handicap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) => handicap = f,
                None => return usage("--handicap requires a factor"),
            },
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) => tolerance = f,
                None => return usage("--tolerance requires a fraction"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    if out_dir.is_none() == check_dir.is_none() {
        return usage("exactly one of --out or --check is required");
    }

    // Build the corpus once, outside all timing. Scale::Small (not the
    // tiny Bench scale) keeps each probe in the tens-of-milliseconds
    // range, where min-of-N wall clocks are noise-robust.
    let corpus = corpus(CorpusProfile::WikiLike, Scale::Small);
    let unit = calibrate_unit_secs();
    println!("calibration unit: {unit:.4}s");

    let mut reports: Vec<BenchReport> = PROBES
        .iter()
        .map(|(name, run)| measure(name, run, &corpus, unit, handicap))
        .collect();
    reports.push(measure_serve(&corpus, unit, handicap));
    reports.push(measure_rsjoin(unit, handicap));
    for r in &reports {
        println!(
            "{}: {:.3} wall units, {} counters",
            r.name,
            r.wall_units,
            r.counters.len()
        );
    }

    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        for r in &reports {
            let path = dir.join(r.file_name());
            if let Err(e) = std::fs::write(&path, r.to_json()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let dir = check_dir.expect("checked above");
    let mut failures = Vec::new();
    for r in &reports {
        let path = dir.join(r.file_name());
        let base = match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(doc) => match BenchReport::parse(&doc) {
                Ok(b) => b,
                Err(e) => {
                    failures.push(format!("{}: unreadable baseline: {e}", path.display()));
                    continue;
                }
            },
            Err(e) => {
                failures.push(format!("{}: missing baseline: {e}", path.display()));
                continue;
            }
        };
        failures.extend(r.compare_against(&base, tolerance));
    }
    if failures.is_empty() {
        println!(
            "bench_probe: {} probes within {:.0}% of baselines",
            reports.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: bench_probe (--out DIR | --check DIR) [--handicap F] [--tolerance F]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

type ProbeFn = fn(&Collection) -> FsJoinResult;

/// The probe workloads: (name, runner). Both join the deterministic
/// WikiLike corpus at θ = 0.8 with default FS-Join tuning.
const PROBES: &[(&str, ProbeFn)] = &[
    ("fsjoin_wiki", |c| {
        fsjoin::run_self_join(c, &FsJoinConfig::default().with_theta(0.8))
    }),
    ("pf_wiki", |c| {
        fsjoin::run_self_join_pf(c, &FsJoinConfig::default().with_theta(0.8))
    }),
];

/// Run one probe: min-of-five wall time (normalized and handicapped)
/// plus the logical counters of the final run (seeded ⇒ identical across
/// runs).
fn measure(
    name: &str,
    run: &ProbeFn,
    corpus: &Collection,
    unit_secs: f64,
    handicap: f64,
) -> BenchReport {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..5 {
        let start = Instant::now();
        let res = run(corpus);
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(res);
    }
    let res = last.expect("three runs");
    let mut counters: Vec<(String, f64)> = res
        .filter_stats
        .fields()
        .iter()
        .map(|(k, v)| (k.to_string(), *v as f64))
        .collect();
    counters.push(("fsjoin.candidates".into(), res.candidates as f64));
    counters.push(("fsjoin.pairs".into(), res.pairs.len() as f64));
    counters.push((
        "mr.shuffle.bytes".into(),
        res.chain.total_shuffle_bytes() as f64,
    ));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    BenchReport {
        name: name.to_string(),
        wall_units: best / unit_secs * handicap,
        counters,
    }
}

/// The two-input R×S probe on the asymmetric |R| ≪ |S| WikiLike pair
/// (see [`ssj_bench::datasets::rs_corpus`]): time
/// [`fsjoin::run_rs_join_two_input`] on its default co-group join path
/// (DESIGN.md §13) and record its logical footprint *next to* both the
/// legacy rekey fan-in path and the RIDPairsPPJoin-over-concat way of
/// answering the same query — shuffle records/bytes and candidate counts
/// for all three, plus the result-pair counts they must agree on and the
/// join stage's bytes-saved counter. A plan-layer regression that brings
/// the second shuffle back (or silently changes either side's candidate
/// generation) trips the zero-tolerance counter gate.
fn measure_rsjoin(unit_secs: f64, handicap: f64) -> BenchReport {
    use ssj_baselines::ridpairs::ridpairs_ppjoin;
    use ssj_similarity::Measure;
    use ssj_text::Record;

    let (r, s) = ssj_bench::datasets::rs_corpus(CorpusProfile::WikiLike, Scale::Bench);
    let cfg = FsJoinConfig::default().with_theta(0.8);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..5 {
        let start = Instant::now();
        let res = fsjoin::run_rs_join_two_input(&r, &s, &cfg);
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(res);
    }
    let res = last.expect("five runs");

    // The path the co-group stage replaced: identity-rekey fan-in with a
    // second shuffle (untimed — kept for the A/B shuffle accounting and
    // the exactness cross-check).
    let rekey = fsjoin::run_rs_join_two_input(&r, &s, &cfg.clone().with_rs_cogroup(false));
    assert_eq!(
        res.pairs.len(),
        rekey.pairs.len(),
        "co-group and rekey join paths disagree on the result"
    );

    // The incumbent: self-join the concatenated collection with
    // RIDPairsPPJoin, then keep only cross-side pairs (untimed — its wall
    // time is gated by the comparison figures, not this probe).
    let offset = r.len() as u32;
    let records: Vec<Record> = r
        .iter()
        .map(|v| Record::from_sorted(v.id, v.tokens.to_vec()))
        .chain(
            s.iter()
                .map(|v| Record::from_sorted(v.id + offset, v.tokens.to_vec())),
        )
        .collect();
    let concat = Collection::new(records, r.token_freqs.clone(), None);
    let rid = ridpairs_ppjoin(
        &concat,
        Measure::Jaccard,
        0.8,
        &ssj_baselines::BaselineConfig::default(),
    );
    let rid_cross = rid
        .pairs
        .iter()
        .filter(|p| {
            let (a, b) = p.ids();
            a < offset && b >= offset
        })
        .count();

    let mut counters: Vec<(String, f64)> = vec![
        ("rsjoin.pairs".into(), res.pairs.len() as f64),
        ("rsjoin.candidates".into(), res.candidates as f64),
        (
            "rsjoin.shuffle.records".into(),
            res.chain
                .jobs
                .iter()
                .map(|j| j.shuffle_records)
                .sum::<usize>() as f64,
        ),
        (
            "rsjoin.shuffle.bytes".into(),
            res.chain.total_shuffle_bytes() as f64,
        ),
        (
            "rsjoin.join.shuffle_bytes_saved".into(),
            res.chain.jobs[2].cogroup_shuffle_bytes_saved() as f64,
        ),
        (
            "rsjoin_rekey.shuffle.records".into(),
            rekey
                .chain
                .jobs
                .iter()
                .map(|j| j.shuffle_records)
                .sum::<usize>() as f64,
        ),
        (
            "rsjoin_rekey.shuffle.bytes".into(),
            rekey.chain.total_shuffle_bytes() as f64,
        ),
        ("ridpairs_concat.pairs_cross".into(), rid_cross as f64),
        (
            "ridpairs_concat.shuffle.records".into(),
            rid.chain
                .jobs
                .iter()
                .map(|j| j.shuffle_records)
                .sum::<usize>() as f64,
        ),
        (
            "ridpairs_concat.shuffle.bytes".into(),
            rid.chain.total_shuffle_bytes() as f64,
        ),
    ];
    assert_eq!(
        res.pairs.len(),
        rid_cross,
        "two-input plan and ridpairs-over-concat disagree on the result"
    );
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    BenchReport {
        name: "rsjoin_wiki".to_string(),
        wall_units: best / unit_secs * handicap,
        counters,
    }
}

/// The serving-plane probe: build a [`ssj_serve::ServeIndex`] over the
/// same corpus (untimed — the build path is already covered by the batch
/// probes it reuses), then time a full sequential replay of every record
/// at θ = 0.8. Counters are the probe cascade's exact tallies plus the
/// index shape, so a filter regression trips the gate even when wall time
/// hides it.
fn measure_serve(corpus: &Collection, unit_secs: f64, handicap: f64) -> BenchReport {
    use ssj_serve::{build_index, ProbeStats, ServeConfig};
    let index = build_index(corpus, &ServeConfig::default().with_theta_min(0.7));
    let mut best = f64::INFINITY;
    let mut last = ProbeStats::default();
    let mut hits = 0u64;
    for _ in 0..5 {
        let mut stats = ProbeStats::default();
        hits = 0;
        let start = Instant::now();
        for rec in 0..index.len() as u32 {
            hits += index
                .probe_with(index.tokens_of(rec), 0.8, Some(rec), &mut stats)
                .len() as u64;
        }
        best = best.min(start.elapsed().as_secs_f64());
        last = stats;
    }
    let mut counters: Vec<(String, f64)> = last
        .fields()
        .iter()
        .map(|(k, v)| (k.to_string(), *v as f64))
        .collect();
    counters.push(("serve.replay.hits".into(), hits as f64));
    counters.push(("serve.index.postings".into(), index.main_postings() as f64));
    counters.push(("serve.index.records".into(), index.len() as f64));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    BenchReport {
        name: "serve_wiki".to_string(),
        wall_units: best / unit_secs * handicap,
        counters,
    }
}
