//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ssj-bench --bin expt -- all
//! cargo run --release -p ssj-bench --bin expt -- fig6 table4
//! cargo run --release -p ssj-bench --bin expt -- --list
//! cargo run --release -p ssj-bench --bin expt -- table1 --trace-out /tmp/trace
//! ```
//!
//! Reports are echoed to stdout and written to `results/<id>.md`. Narration
//! goes to stderr through the `SSJ_LOG` leveled logger (`quiet`/`info`/
//! `debug`, default `info`).
//!
//! With `--trace-out <dir>`, the run records spans (jobs, phases, tasks,
//! FS-Join stages), per-run simulated cluster timelines, and the metrics
//! registry, then writes `<dir>/trace.json` (Chrome trace-event format —
//! load in ui.perfetto.dev or chrome://tracing) and `<dir>/metrics.jsonl`.

use ssj_bench::experiments;
use ssj_bench::report::publish;
use ssj_observe::ChromeTrace;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out: Option<PathBuf> = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("error: --trace-out requires a directory argument");
                std::process::exit(2);
            }
            let dir = PathBuf::from(args.remove(i + 1));
            args.remove(i);
            Some(dir)
        }
        None => None,
    };
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: expt [--list] [--trace-out <dir>] <experiment-id>... | all");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }

    let observers = trace_out.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("create trace-out dir");
        (
            ssj_observe::install_collector(),
            ssj_observe::install_registry(),
        )
    });

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let start = Instant::now();
        let expt_span = ssj_observe::span("expt", id);
        match experiments::run(id) {
            Some(markdown) => {
                drop(expt_span);
                publish(id, &markdown);
                ssj_observe::info!(
                    "[expt] {id} finished in {:.1}s",
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("[expt] unknown experiment {id:?}; try --list");
                std::process::exit(2);
            }
        }
    }

    if let (Some(dir), Some((collector, registry))) = (trace_out, observers) {
        ssj_observe::uninstall_collector();
        ssj_observe::uninstall_registry();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.jsonl");
        std::fs::write(
            &trace_path,
            ChromeTrace::from_collector(&collector).to_json(),
        )
        .expect("write trace.json");
        std::fs::write(&metrics_path, registry.to_jsonl()).expect("write metrics.jsonl");
        ssj_observe::info!("[expt] wrote {}", trace_path.display());
        ssj_observe::info!("[expt] wrote {}", metrics_path.display());
    }
}
