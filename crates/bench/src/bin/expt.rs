//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ssj-bench --bin expt -- all
//! cargo run --release -p ssj-bench --bin expt -- fig6 table4
//! cargo run --release -p ssj-bench --bin expt -- --list
//! ```
//!
//! Reports are echoed to stdout and written to `results/<id>.md`.

use ssj_bench::experiments;
use ssj_bench::report::publish;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: expt [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let start = Instant::now();
        match experiments::run(id) {
            Some(markdown) => {
                publish(id, &markdown);
                eprintln!("[expt] {id} finished in {:.1}s", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("[expt] unknown experiment {id:?}; try --list");
                std::process::exit(2);
            }
        }
    }
}
