//! `ssj-serve` — the serving plane's closed-loop latency harness and
//! deterministic replay gate.
//!
//! ```text
//! ssj-serve                        # report mode → results/serve.md
//! ssj-serve --out PATH             # report mode, explicit output path
//! ssj-serve --digest [--workers W] # CI mode: deterministic replay digest
//! ```
//!
//! **Report mode** builds a [`ServeIndex`] over the WikiLike corpus
//! (Scale::Small), replays every record as a probe query from closed-loop
//! workers at several concurrencies (p50/p90/p99 latency + sustained
//! QPS), proves the answers equivalent to a batch FS-Join golden, then
//! exercises the freshness path — inserts, probes against a delta-heavy
//! index, compaction — re-proving equivalence after each step, and writes
//! the whole story to `results/serve.md`. Exit code is nonzero if any
//! equivalence check fails.
//!
//! **Digest mode** runs a scaled-down replay (bench corpus) with a
//! caller-chosen build worker count, including an insert/compaction
//! interleave, and prints a canonical digest of every query's full result
//! set plus the exact probe counters. Worker count parallelizes the index
//! *build* but must never change index content or probe answers — CI runs
//! this binary across worker counts and diffs the output byte-for-byte.

use std::process::ExitCode;
use std::time::Instant;

use ssj_bench::serve_load::{closed_loop, replay_queries, ServeLoadReport};
use ssj_bench::{bench_corpus, corpus, Scale};
use ssj_serve::{build_index, ProbeStats, ServeConfig, ServeIndex};
use ssj_text::{Collection, CorpusProfile, Record, RecordId};

const THETA: f64 = 0.8;
const THETA_MIN: f64 = 0.7;

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig::default()
        .with_theta_min(THETA_MIN)
        .with_workers(workers)
}

fn main() -> ExitCode {
    let mut digest_mode = false;
    let mut workers = 4usize;
    let mut out_path = String::from("results/serve.md");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--digest" => digest_mode = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) => workers = w,
                None => return usage("--workers requires a count"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out requires a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    if digest_mode {
        run_digest(workers)
    } else {
        run_report(workers, &out_path)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: ssj-serve [--digest] [--workers N] [--out PATH]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// The first `n` records of `full`, keeping `full`'s rank space — the
/// base an index is built on before the tail arrives as inserts.
fn prefix_collection(full: &Collection, n: usize) -> Collection {
    let records = (0..n)
        .map(|rid| Record::from_sorted(rid as RecordId, full.tokens(rid as RecordId).to_vec()))
        .collect();
    Collection::new(records, full.token_freqs.clone(), None)
}

/// Probe every record (self excluded) and return the canonical sorted
/// `(a, b, score bits)` pair list — the serving-side analogue of a batch
/// join result.
fn probe_all_pairs(index: &ServeIndex, theta: f64) -> (Vec<(u32, u32, u64)>, ProbeStats) {
    let mut stats = ProbeStats::default();
    let mut pairs = Vec::new();
    for rec in 0..index.len() as u32 {
        for (other, sim) in index.probe_with(index.tokens_of(rec), theta, Some(rec), &mut stats) {
            let (a, b) = if rec < other {
                (rec, other)
            } else {
                (other, rec)
            };
            pairs.push((a, b, sim.to_bits()));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    (pairs, stats)
}

/// FNV-1a over `(a, b, score bits)` triples (same scheme as the shuffle
/// determinism probe).
fn digest(triples: &[(u32, u32, u64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(a, b, s) in triples {
        mix(a as u64);
        mix(b as u64);
        mix(s);
    }
    h
}

fn batch_pairs(collection: &Collection, theta: f64) -> Vec<(u32, u32, u64)> {
    let cfg = fsjoin::FsJoinConfig::default().with_theta(theta);
    let mut pairs: Vec<(u32, u32, u64)> = fsjoin::run_self_join(collection, &cfg)
        .pairs
        .iter()
        .map(|p| (p.a, p.b, p.sim.to_bits()))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

// ---------------------------------------------------------------------------
// Digest mode
// ---------------------------------------------------------------------------

fn run_digest(workers: usize) -> ExitCode {
    let full = bench_corpus();
    let n = full.len();
    let base = n * 4 / 5;

    // Build on the first 80%, insert the rest with periodic compactions —
    // the digest covers the whole delta/compaction lifecycle.
    let mut index = build_index(&prefix_collection(&full, base), &serve_cfg(workers));
    for rid in base..n {
        index
            .insert(full.tokens(rid as RecordId))
            .expect("corpus records are well-formed");
        if (rid - base) % 7 == 6 {
            index.compact();
        }
    }

    let (pairs, stats) = probe_all_pairs(&index, THETA);
    // Every line below must be byte-identical across worker counts.
    println!(
        "serve: records={} main_postings={} delta_records={}",
        index.len(),
        index.main_postings(),
        index.delta_len()
    );
    println!(
        "replay: pairs={} digest={:#018x}",
        pairs.len(),
        digest(&pairs)
    );
    for (key, value) in stats.fields() {
        println!("counter {key}={value}");
    }
    index.compact();
    let (after, _) = probe_all_pairs(&index, THETA);
    println!(
        "post-compaction: pairs={} digest={:#018x} delta_records={}",
        after.len(),
        digest(&after),
        index.delta_len()
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Report mode
// ---------------------------------------------------------------------------

struct LatencyRow {
    concurrency: usize,
    report: ServeLoadReport,
}

fn latency_table(rows: &[LatencyRow]) -> String {
    let mut s = String::from(
        "| Concurrency | QPS | p50 (µs) | p90 (µs) | p99 (µs) | mean (µs) |\n\
         |-------------|-----|----------|----------|----------|-----------|\n",
    );
    for row in rows {
        let r = &row.report;
        s.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |\n",
            row.concurrency,
            r.qps,
            r.latency_quantile_us(0.5),
            r.latency_quantile_us(0.9),
            r.latency_quantile_us(0.99),
            r.latency_us.mean(),
        ));
    }
    s
}

fn run_report(workers: usize, out_path: &str) -> ExitCode {
    let full = corpus(CorpusProfile::WikiLike, Scale::Small);
    let n = full.len();
    println!("corpus: {} records (WikiLike, small scale)", n);

    // ---- Build (the batch plane doing what it is for) ---------------------
    let t0 = Instant::now();
    let index = build_index(&full, &serve_cfg(workers));
    let build_secs = t0.elapsed().as_secs_f64();
    println!(
        "build: {:.3}s, {} postings, {} partitions",
        build_secs,
        index.main_postings(),
        index.config().build_partitions
    );

    // ---- Equivalence golden ----------------------------------------------
    let golden = batch_pairs(&full, THETA);
    let (served, _) = probe_all_pairs(&index, THETA);
    let fresh_ok = served == golden;
    println!(
        "equivalence (fresh build): {} [{} pairs]",
        if fresh_ok { "PASS" } else { "FAIL" },
        golden.len()
    );

    // ---- Closed-loop latency sweep ---------------------------------------
    let queries = replay_queries(&index, 1);
    let mut rows = Vec::new();
    for concurrency in [1usize, 2, 4, 8] {
        let report = closed_loop(&index, &queries, THETA, concurrency);
        println!(
            "closed loop c={}: {:.0} qps, p50={:.0}µs p99={:.0}µs",
            concurrency,
            report.qps,
            report.latency_quantile_us(0.5),
            report.latency_quantile_us(0.99)
        );
        rows.push(LatencyRow {
            concurrency,
            report,
        });
    }

    // ---- Freshness path: inserts, delta-heavy probes, compaction ---------
    let base = n * 9 / 10;
    let mut live = build_index(&prefix_collection(&full, base), &serve_cfg(workers));
    let t1 = Instant::now();
    for rid in base..n {
        live.insert(full.tokens(rid as RecordId))
            .expect("corpus records are well-formed");
    }
    let insert_secs = t1.elapsed().as_secs_f64();
    let inserted = n - base;
    let (served_delta, _) = probe_all_pairs(&live, THETA);
    let delta_ok = served_delta == golden;
    let delta_report = closed_loop(&live, &queries, THETA, 4);
    println!(
        "inserts: {} records in {:.3}s ({:.0}/s); equivalence (delta-heavy): {}",
        inserted,
        insert_secs,
        inserted as f64 / insert_secs.max(1e-9),
        if delta_ok { "PASS" } else { "FAIL" }
    );

    let t2 = Instant::now();
    live.compact();
    let compact_secs = t2.elapsed().as_secs_f64();
    let (served_compacted, _) = probe_all_pairs(&live, THETA);
    let compact_ok = served_compacted == golden;
    let compact_report = closed_loop(&live, &queries, THETA, 4);
    println!(
        "compaction: {:.3}s; equivalence (post-compaction): {}",
        compact_secs,
        if compact_ok { "PASS" } else { "FAIL" }
    );

    // ---- Write the report -------------------------------------------------
    let stats = &rows[0].report.stats;
    let md = format!(
        "# Serving plane — closed-loop latency and sustained QPS\n\n\
         WikiLike (small scale, {n} records), θ = {THETA}, Jaccard, index \
         built for θ_min = {THETA_MIN}; every non-empty record replayed as \
         a probe query against a [`ServeIndex`] (no MapReduce on the query \
         path). Latency quantiles come from a log-scale histogram \
         (microseconds), so p50/p99 are bucket-interpolated.\n\n\
         Index build (a one-stage plan; sealed partitions adopted \
         zero-copy): {build_secs:.3}s for {postings} postings.\n\n\
         ## Sealed index\n\n{sealed}\n\
         Per-query filter cascade at c=1 ({queries} queries): \
         {candidates} candidates, {length} length-pruned postings, \
         {prefix} prefix-pruned records, {position} position-pruned, \
         {bitmap_checks} bitmap-checked, {bitmap_pruned} bitmap-pruned \
         (lossless XOR-Hamming bound, DESIGN.md §12), \
         {verified} verified, {hits} hits.\n\n\
         ## Freshness path\n\n\
         Inserting the last {inserted} records ({ins_rate:.0} inserts/s), \
         probing the delta-heavy index, then compacting \
         ({compact_secs:.3}s) — answers stay equal to the batch FS-Join \
         golden at every step:\n\n\
         | Phase | Equivalence vs batch join | QPS (c=4) | p99 (µs) |\n\
         |-------|---------------------------|-----------|----------|\n\
         | fresh build | {fresh} | {fresh_qps:.0} | {fresh_p99:.0} |\n\
         | after {inserted} inserts (delta-heavy) | {delta} | {delta_qps:.0} | {delta_p99:.0} |\n\
         | after compaction | {compact} | {compact_qps:.0} | {compact_p99:.0} |\n",
        n = n,
        postings = index.main_postings(),
        sealed = latency_table(&rows),
        queries = rows[0].report.queries,
        candidates = stats.candidates,
        length = stats.length_pruned,
        prefix = stats.prefix_pruned,
        position = stats.position_pruned,
        bitmap_checks = stats.bitmap_checks,
        bitmap_pruned = stats.bitmap_pruned,
        verified = stats.verified,
        hits = stats.hits,
        inserted = inserted,
        ins_rate = inserted as f64 / insert_secs.max(1e-9),
        fresh = if fresh_ok { "PASS" } else { "FAIL" },
        delta = if delta_ok { "PASS" } else { "FAIL" },
        compact = if compact_ok { "PASS" } else { "FAIL" },
        fresh_qps = rows[2].report.qps,
        fresh_p99 = rows[2].report.latency_quantile_us(0.99),
        delta_qps = delta_report.qps,
        delta_p99 = delta_report.latency_quantile_us(0.99),
        compact_qps = compact_report.qps,
        compact_p99 = compact_report.latency_quantile_us(0.99),
    );
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(out_path, md) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path}");

    if fresh_ok && delta_ok && compact_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("serving answers diverged from the batch golden");
        ExitCode::FAILURE
    }
}
