//! `ssj-prof` — plan-aware profile reports from an `expt --trace-out` dir.
//!
//! ```text
//! cargo run --release -p ssj-bench --bin expt -- table1 --trace-out /tmp/t
//! cargo run --release -p ssj-bench --bin ssj-prof -- /tmp/t
//! cargo run --release -p ssj-bench --bin ssj-prof -- /tmp/t --check
//! ```
//!
//! Reads `<dir>/trace.json` (Chrome trace-event format), reconstructs each
//! plan run's DAG from its `(plan, run, stage, partition)`-tagged task
//! spans — real `PlanRunner` executions (host pid) and simulated
//! `ClusterModel::simulate_plan` timelines (synthetic pids ≥ 100) alike —
//! and prints per-run critical path, top-N tasks with slack, and a stage
//! waterfall. When `<dir>/metrics.jsonl` exists, per-reduce-stage skew
//! histograms and imbalance factors are appended.
//!
//! `--check` turns the report into a gate: every reconstructed profile's
//! critical path must span ≥ 95% of its makespan (the chain the profiler
//! blames must actually bound wall-clock), and at least one profile must
//! be present. Output is deterministic for fixed inputs, so CI also diffs
//! two invocations byte-for-byte.

use ssj_observe::json::Value;
use ssj_observe::{spans_from_chrome_json, LogHistogram, PlanProfile, TaskKind};
use std::path::PathBuf;
use std::process::ExitCode;

/// Minimum critical-path coverage of the makespan accepted by `--check`.
const CHECK_COVERAGE: f64 = 0.95;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut top = 5usize;
    let mut check = false;
    let mut plan_filter: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top requires a number"),
            },
            "--plan" => match args.next() {
                Some(p) => plan_filter = Some(p),
                None => return usage("--plan requires a name"),
            },
            "--check" => check = true,
            "--help" | "-h" => return usage(""),
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return usage("missing trace directory");
    };

    let trace_path = dir.join("trace.json");
    let doc = match std::fs::read_to_string(&trace_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    };
    let spans = match spans_from_chrome_json(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    };
    let mut profiles = PlanProfile::from_spans(&spans);
    if let Some(p) = &plan_filter {
        profiles.retain(|x| &x.plan == p);
    }
    if profiles.is_empty() {
        println!("no plan-tagged task spans in {}", trace_path.display());
        return if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut check_ok = true;
    for p in &profiles {
        let coverage = print_profile(p, top);
        if check {
            let ok = coverage >= CHECK_COVERAGE;
            check_ok &= ok;
            println!(
                "CHECK plan={} run={} pid={} coverage={:.1}% {}",
                p.plan,
                p.run,
                p.pid,
                coverage * 100.0,
                if ok { "OK" } else { "FAIL (< 95%)" }
            );
            println!();
        }
    }

    let metrics_path = dir.join("metrics.jsonl");
    if let Ok(doc) = std::fs::read_to_string(&metrics_path) {
        print_stage_skew(&doc);
    }

    if check && !check_ok {
        eprintln!("ssj-prof --check: critical-path coverage below threshold");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: ssj-prof <trace-dir> [--top N] [--plan NAME] [--check]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

fn kind_str(k: TaskKind) -> &'static str {
    match k {
        TaskKind::Map => "map",
        TaskKind::Reduce => "reduce",
        TaskKind::CoGroup => "cogrp",
    }
}

/// Print one profile's report; returns critical-path coverage of the
/// makespan in [0, 1].
fn print_profile(p: &PlanProfile, top: usize) -> f64 {
    let origin = if p.pid < 100 { "host" } else { "sim" };
    println!(
        "== plan '{}' run {} ({origin} pid {}) ==",
        p.plan, p.run, p.pid
    );
    let makespan = p.makespan_us();
    println!(
        "makespan {:.1} ms, {} tasks across {} stages",
        ms(makespan),
        p.tasks.len(),
        p.stage_waterfall().len()
    );

    println!("stage waterfall:");
    for s in p.stage_waterfall() {
        println!(
            "  [{}] {:<18} start {:>8.1} ms  end {:>8.1} ms  tasks {:>3}  busy {:>8.1} ms  peak x{}",
            s.stage,
            s.name,
            ms(s.start_us),
            ms(s.end_us),
            s.tasks,
            ms(s.busy_us),
            s.peak_concurrency
        );
    }

    let path = p.critical_path();
    let span = p.critical_path_span_us();
    let busy = p.critical_path_busy_us();
    let coverage = if makespan == 0 {
        1.0
    } else {
        span as f64 / makespan as f64
    };
    println!(
        "critical path: {} hops, span {:.1} ms ({:.1}% of makespan), busy {:.1} ms ({:.1}% of span)",
        path.len(),
        ms(span),
        coverage * 100.0,
        ms(busy),
        if span == 0 {
            100.0
        } else {
            busy as f64 / span as f64 * 100.0
        }
    );
    for &i in &path {
        let t = &p.tasks[i];
        println!(
            "  stage {} {:<6} p{:<3} start {:>8.1} ms  dur {:>8.1} ms  lane {}:{}",
            t.stage,
            kind_str(t.kind),
            t.partition,
            ms(t.start_us),
            ms(t.dur_us()),
            t.pid,
            t.tid
        );
    }

    // Top-N tasks by duration, annotated with CPM slack and a straggler
    // mark when the task ran > 2x its stage's median task duration.
    let slack = p.slack_us();
    let medians = stage_medians(p);
    let mut order: Vec<usize> = (0..p.tasks.len()).collect();
    order.sort_by_key(|&i| {
        let t = &p.tasks[i];
        (
            std::cmp::Reverse(t.dur_us()),
            t.start_us,
            t.stage,
            t.partition,
        )
    });
    println!("top {} tasks by duration:", top.min(order.len()));
    for &i in order.iter().take(top) {
        let t = &p.tasks[i];
        let median = medians
            .iter()
            .find(|(s, k, _)| *s == t.stage && *k == t.kind)
            .map(|(_, _, m)| *m)
            .unwrap_or(0);
        let straggler = median > 0 && t.dur_us() > 2 * median;
        println!(
            "  stage {} {:<6} p{:<3} dur {:>8.1} ms  slack {:>8.1} ms{}",
            t.stage,
            kind_str(t.kind),
            t.partition,
            ms(t.dur_us()),
            ms(slack[i]),
            if straggler { "  STRAGGLER" } else { "" }
        );
    }
    println!();
    coverage
}

/// Median task duration per (stage, kind).
fn stage_medians(p: &PlanProfile) -> Vec<(usize, TaskKind, u64)> {
    let mut groups: Vec<(usize, TaskKind, Vec<u64>)> = Vec::new();
    for t in &p.tasks {
        match groups
            .iter_mut()
            .find(|(s, k, _)| *s == t.stage && *k == t.kind)
        {
            Some((_, _, v)) => v.push(t.dur_us()),
            None => groups.push((t.stage, t.kind, vec![t.dur_us()])),
        }
    }
    groups
        .into_iter()
        .map(|(s, k, mut v)| {
            v.sort_unstable();
            (s, k, v[v.len() / 2])
        })
        .collect()
}

/// One parsed metrics.jsonl line.
enum Metric {
    Counter(f64),
    Gauge(f64),
    Histogram(Box<LogHistogram>),
}

fn parse_metrics(doc: &str) -> Vec<(String, Metric)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = Value::parse(line) else { continue };
        let Some(name) = v.get("metric").and_then(Value::as_str) else {
            continue;
        };
        let metric = match v.get("type").and_then(Value::as_str) {
            Some("counter") => v.get("value").and_then(Value::as_f64).map(Metric::Counter),
            Some("gauge") => v.get("value").and_then(Value::as_f64).map(Metric::Gauge),
            Some("histogram") => {
                let f = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
                let buckets: Vec<(u64, u64)> = v
                    .get("buckets")
                    .and_then(Value::as_obj)
                    .map(|obj| {
                        obj.iter()
                            .filter_map(|(k, c)| Some((k.parse::<u64>().ok()?, c.as_u64()?)))
                            .collect()
                    })
                    .unwrap_or_default();
                Some(Metric::Histogram(Box::new(LogHistogram::from_export(
                    f("count"),
                    f("sum"),
                    f("min"),
                    f("max"),
                    &buckets,
                ))))
            }
            _ => None,
        };
        if let Some(m) = metric {
            out.push((name.to_string(), m));
        }
    }
    out
}

/// Print the per-reduce-stage skew section from the `mr.stage.*`
/// namespace (see DESIGN.md §8).
fn print_stage_skew(doc: &str) {
    let metrics = parse_metrics(doc);
    let mut stages: Vec<String> = metrics
        .iter()
        .filter_map(|(name, _)| {
            let rest = name.strip_prefix("mr.stage.")?;
            Some(rest.split('.').next()?.to_string())
        })
        .collect();
    stages.sort();
    stages.dedup();
    if stages.is_empty() {
        return;
    }

    let find = |name: &str| metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m);
    let gauge = |name: &str| match find(name) {
        Some(Metric::Gauge(g)) => Some(*g),
        _ => None,
    };
    let counter = |name: &str| match find(name) {
        Some(Metric::Counter(c)) => Some(*c),
        _ => None,
    };

    println!("reduce-stage skew (metrics.jsonl):");
    for stage in &stages {
        let h = match find(&format!("mr.stage.{stage}.reduce.bytes")) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        };
        let (p50, p99, max) = h
            .map(|h| (h.quantile(0.5), h.quantile(0.99), h.max()))
            .unwrap_or((0.0, 0.0, 0));
        let fmt_gauge = |suffix: &str| {
            gauge(&format!("mr.stage.{stage}.{suffix}"))
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "  {:<20} bytes p50 {:>10.0} p99 {:>10.0} max {:>10}  | max/mean {}  gini {}  p99/p50 {}  | map max/mean {}  stragglers {}",
            stage,
            p50,
            p99,
            max,
            fmt_gauge("skew.max_over_mean"),
            fmt_gauge("skew.gini"),
            fmt_gauge("skew.p99_over_p50"),
            fmt_gauge("map.skew.max_over_mean"),
            counter(&format!("mr.stage.{stage}.stragglers"))
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "-".to_string())
        );
    }

    // Co-group stages consume their upstreams' sealed reduce partitions
    // in place; the counter is the shuffle volume an identity-rekey
    // fan-in over the same inputs would have re-transferred.
    let cogroups: Vec<&String> = stages
        .iter()
        .filter(|s| gauge(&fsjoin::keys::mr_stage_cogroup_key(s)) == Some(1.0))
        .collect();
    if !cogroups.is_empty() {
        println!("co-group stages (no fan-in shuffle):");
        for stage in cogroups {
            println!(
                "  {:<20} shuffle bytes saved {:>12}",
                stage,
                counter(&fsjoin::keys::mr_stage_cogroup_bytes_saved_key(stage))
                    .map(|c| format!("{c:.0}"))
                    .unwrap_or_else(|| "-".to_string())
            );
        }
    }
}
