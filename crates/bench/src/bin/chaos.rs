//! Chaos smoke: run FS-Join fault-free, then under a globally installed
//! seeded fault plan, and print a deterministic report.
//!
//! ```text
//! cargo run --release -p ssj-bench --bin chaos -- [seed] [rate]
//! ```
//!
//! The pipeline itself is *unmodified* — the fault plan is installed
//! process-globally ([`ssj_faults::install_plan`]) and picked up by every
//! `JobBuilder` in the chain, exactly how the CI determinism gate drives
//! it. Output lines are stable for a given (seed, rate): the CI smoke runs
//! this binary twice and asserts the outputs are byte-identical.

use ssj_bench::datasets::{bench_corpus, tuned_fsjoin};
use ssj_faults::FaultPlan;
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::CorpusProfile;

/// FNV-1a over the canonically sorted pair list (ids + exact score bits).
fn digest(pairs: &[SimilarPair]) -> u64 {
    let mut sorted: Vec<(u32, u32, u64)> =
        pairs.iter().map(|p| (p.a, p.b, p.sim.to_bits())).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (a, b, s) in sorted {
        mix(a as u64);
        mix(b as u64);
        mix(s);
    }
    h
}

fn join() -> (Vec<SimilarPair>, ssj_mapreduce::ExecSummary) {
    let corpus = bench_corpus();
    let cfg = tuned_fsjoin(CorpusProfile::WikiLike)
        .with_theta(0.8)
        .with_measure(Measure::Jaccard)
        .with_tasks(8, 12);
    let res = fsjoin::run_self_join(&corpus, &cfg);
    (res.pairs, res.chain.total_exec())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.first().map_or(42, |s| s.parse().expect("seed: u64"));
    let rate: f64 = args.get(1).map_or(0.05, |s| s.parse().expect("rate: f64"));

    ssj_faults::silence_injected_panics();

    let (clean_pairs, clean_exec) = join();
    println!(
        "clean: pairs={} digest={:#018x} retries={}",
        clean_pairs.len(),
        digest(&clean_pairs),
        clean_exec.retries
    );

    ssj_faults::install_plan(FaultPlan::chaos(seed, rate));
    let (chaos_pairs, exec) = join();
    ssj_faults::uninstall_plan();

    println!(
        "chaos: seed={seed} rate={rate} pairs={} digest={:#018x}",
        chaos_pairs.len(),
        digest(&chaos_pairs)
    );
    println!(
        "counters: attempts={} retries={} injected_errors={} injected_panics={} \
         injected_stragglers={} spec_launched={}",
        exec.attempts,
        exec.retries,
        exec.injected_errors,
        exec.injected_panics,
        exec.injected_stragglers,
        exec.speculative_launched
    );
    let identical = digest(&clean_pairs) == digest(&chaos_pairs);
    println!("identical={identical}");
    if !identical {
        eprintln!("FATAL: fault injection changed the join result");
        std::process::exit(1);
    }
}
