//! Shuffle-determinism probe: run the fig6-style FS-Join comparison
//! workload at bench scale with a caller-chosen worker-thread count and
//! print a deterministic report — result digest, candidate count, and
//! per-job shuffle record/byte accounting.
//!
//! ```text
//! cargo run --release -p ssj-bench --bin determinism -- [workers] [mode] [target] [prune] [joinpath]
//! ```
//!
//! Worker count parallelizes the map/shuffle/reduce phases but must never
//! change output, metrics, or byte accounting (the engine's streaming
//! shuffle merges spill runs in deterministic map-task order regardless of
//! which thread transposed them). `mode` is `pipelined` (default) or
//! `sequential` and selects how the plan runner sequences the chain —
//! pipelining overlaps stages but must be equally invisible in this
//! report. `target` is `selfjoin` (default, the fig6-style two-stage
//! FS-Join) or `rsjoin` (the two-input R×S plan, exercising per-split
//! multi-upstream scheduling and broadcast edges). `prune` is `prune`
//! (default) or `noprune` and toggles the bitmap prune in front of exact
//! verification — the prune is lossless, so this report too must be
//! byte-identical with it on or off (the report deliberately carries no
//! kernel counters). `joinpath` is `cogroup` (default) or `rekey` and
//! selects the rsjoin join-stage execution path (DESIGN.md §13); the two
//! paths produce identical `result:`/`filters:` lines but legitimately
//! different per-job shuffle accounting — the rekey path pays a second
//! shuffle the co-group path eliminates — so the cross-path CI gate diffs
//! only the result lines. The CI gates run this binary across worker
//! counts, across plan modes, across the prune toggle, *and* across the
//! join path, and diff the outputs byte-for-byte.

use ssj_bench::datasets::{bench_corpus, rs_corpus, tuned_fsjoin};
use ssj_bench::Scale;
use ssj_mapreduce::PlanMode;
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::CorpusProfile;

/// FNV-1a over the canonically sorted pair list (ids + exact score bits).
fn digest(pairs: &[SimilarPair]) -> u64 {
    let mut sorted: Vec<(u32, u32, u64)> =
        pairs.iter().map(|p| (p.a, p.b, p.sim.to_bits())).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (a, b, s) in sorted {
        mix(a as u64);
        mix(b as u64);
        mix(s);
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = args
        .first()
        .map_or(2, |s| s.parse().expect("workers: usize"));
    let mode = match args.get(1).map(String::as_str) {
        None | Some("pipelined") => PlanMode::Pipelined,
        Some("sequential") => PlanMode::Sequential,
        Some(other) => panic!("mode must be `pipelined` or `sequential`, got `{other}`"),
    };

    let prune = match args.get(3).map(String::as_str) {
        None | Some("prune") => true,
        Some("noprune") => false,
        Some(other) => panic!("prune must be `prune` or `noprune`, got `{other}`"),
    };

    let cogroup = match args.get(4).map(String::as_str) {
        None | Some("cogroup") => true,
        Some("rekey") => false,
        Some(other) => panic!("joinpath must be `cogroup` or `rekey`, got `{other}`"),
    };

    let res = match args.get(2).map(String::as_str) {
        None | Some("selfjoin") => {
            let corpus = bench_corpus();
            let cfg = tuned_fsjoin(CorpusProfile::WikiLike)
                .with_theta(0.8)
                .with_measure(Measure::Jaccard)
                .with_tasks(8, 12)
                .with_workers(workers)
                .with_plan_mode(mode)
                .with_bitmap_prune(prune);
            fsjoin::run_self_join(&corpus, &cfg)
        }
        Some("rsjoin") => {
            let (r, s) = rs_corpus(CorpusProfile::WikiLike, Scale::Bench);
            let cfg = fsjoin::FsJoinConfig::default()
                .with_theta(0.8)
                .with_measure(Measure::Jaccard)
                .with_tasks(8, 12)
                .with_workers(workers)
                .with_plan_mode(mode)
                .with_bitmap_prune(prune)
                .with_rs_cogroup(cogroup);
            fsjoin::run_rs_join_two_input(&r, &s, &cfg)
        }
        Some(other) => panic!("target must be `selfjoin` or `rsjoin`, got `{other}`"),
    };

    // Every line below must be byte-identical across worker counts.
    println!(
        "result: pairs={} digest={:#018x} candidates={}",
        res.pairs.len(),
        digest(&res.pairs),
        res.candidates
    );
    println!(
        "filters: pairs_considered={} emitted={}",
        res.filter_stats.pairs_considered, res.filter_stats.emitted
    );
    for job in &res.chain.jobs {
        println!(
            "job {}: shuffle_records={} shuffle_bytes={} pre_combine_records={} \
             pre_combine_bytes={} map_out={} reduce_out={}",
            job.name,
            job.shuffle_records,
            job.shuffle_bytes,
            job.pre_combine_records,
            job.pre_combine_bytes,
            job.map_output_records(),
            job.reduce_output_records()
        );
    }
}
