//! Simulated-cluster timelines as Chrome trace events.
//!
//! [`ClusterModel::simulate_chain_schedule`] assigns every measured task a
//! `(node, slot, start, end)` on the modelled cluster; this module renders
//! that schedule into the installed [`ssj_observe`] collector as a synthetic
//! process (one per recorded run, pids from 100 up), so `expt --trace-out`
//! traces show the real host execution *and* the simulated cluster occupancy
//! side by side in Perfetto.
//!
//! Lane layout per simulated process: tid `0..total_slots` are the cluster's
//! task slots (named `node<N>/slot<S>`), tid `total_slots` is the shuffle
//! bar, tid `total_slots + 1` carries one bar per job (the phase boundaries
//! shared with [`ClusterModel::simulate_job`]).

use ssj_mapreduce::{ChainMetrics, ClusterModel, SimSchedule};
use ssj_observe::{Collector, TraceEvent};
use std::sync::atomic::{AtomicU32, Ordering};

/// Host execution records under pid 1; simulated runs start here.
const SIM_PID_BASE: u32 = 100;

static NEXT_SIM_PID: AtomicU32 = AtomicU32::new(SIM_PID_BASE);

fn us(secs: f64) -> u64 {
    (secs.max(0.0) * 1e6).round() as u64
}

fn dur_us(start_secs: f64, end_secs: f64) -> u64 {
    us((end_secs - start_secs).max(0.0)).max(1)
}

/// Render one simulated chain schedule into `collector` as a fresh synthetic
/// process named after `label`. Returns the pid used.
pub fn record_sim_schedule(
    collector: &Collector,
    label: &str,
    cluster: &ClusterModel,
    schedules: &[SimSchedule],
) -> u32 {
    record_schedule_impl(collector, label, cluster, schedules, None)
}

/// Render a simulated *plan* timeline (e.g. from
/// [`ClusterModel::simulate_plan`]) with the same `(plan, run, stage,
/// partition, attempt)` args the real `PlanRunner` stamps on its spans, so
/// the profiler analyses the simulated timeline identically to the real
/// trace. `deps[j]` lists stage `j`'s shuffle upstreams (empty = external
/// input). Returns the `(pid, run)` pair identifying the timeline.
pub fn record_plan_schedule(
    collector: &Collector,
    plan_name: &str,
    cluster: &ClusterModel,
    schedules: &[SimSchedule],
    deps: &[Vec<usize>],
) -> (u32, u64) {
    let run = ssj_mapreduce::next_plan_run_id();
    let pid = record_schedule_impl(
        collector,
        plan_name,
        cluster,
        schedules,
        Some((plan_name, run, deps)),
    );
    (pid, run)
}

fn record_schedule_impl(
    collector: &Collector,
    label: &str,
    cluster: &ClusterModel,
    schedules: &[SimSchedule],
    plan_ctx: Option<(&str, u64, &[Vec<usize>])>,
) -> u32 {
    let pid = NEXT_SIM_PID.fetch_add(1, Ordering::Relaxed);
    let slots = cluster.total_slots() as u32;
    collector.set_process_name(
        pid,
        &format!(
            "sim: {label} ({} nodes × {} slots)",
            cluster.nodes, cluster.slots_per_node
        ),
    );
    for s in 0..slots {
        collector.set_thread_name(
            pid,
            s,
            &format!(
                "node{}/slot{}",
                s as usize / cluster.slots_per_node,
                s as usize % cluster.slots_per_node
            ),
        );
    }
    collector.set_thread_name(pid, slots, "shuffle");
    collector.set_thread_name(pid, slots + 1, "jobs");

    for (stage_idx, sched) in schedules.iter().enumerate() {
        let mut job_args: Vec<(&'static str, ssj_observe::FieldValue)> =
            vec![("shuffle_bytes", (sched.shuffle_bytes as u64).into())];
        if let Some((plan, run, deps)) = plan_ctx {
            job_args.push(("plan", plan.into()));
            job_args.push(("run", run.into()));
            job_args.push(("stage", (stage_idx as u64).into()));
            let ups = deps.get(stage_idx).map(Vec::as_slice).unwrap_or(&[]);
            job_args.push(("upstream", ssj_observe::encode_upstreams(ups).into()));
        }
        collector.push(TraceEvent {
            name: sched.job_name.clone(),
            cat: "sim.job",
            pid,
            tid: slots + 1,
            ts_us: us(sched.start_secs),
            dur_us: dur_us(sched.start_secs, sched.end_secs),
            args: job_args,
        });
        if sched.shuffle_end_secs > sched.shuffle_start_secs {
            collector.push(TraceEvent {
                name: format!("{} shuffle", sched.job_name),
                cat: "sim.shuffle",
                pid,
                tid: slots,
                ts_us: us(sched.shuffle_start_secs),
                dur_us: dur_us(sched.shuffle_start_secs, sched.shuffle_end_secs),
                args: vec![("bytes", (sched.shuffle_bytes as u64).into())],
            });
        }
        for task in &sched.tasks {
            let kind = match task.kind {
                ssj_mapreduce::TaskKind::Map => "map",
                ssj_mapreduce::TaskKind::Reduce => "reduce",
                ssj_mapreduce::TaskKind::CoGroup => "cogroup",
            };
            let mut task_args: Vec<(&'static str, ssj_observe::FieldValue)> = vec![
                ("node", (task.node as u64).into()),
                ("job", sched.job_name.as_str().into()),
            ];
            if let Some((plan, run, _)) = plan_ctx {
                task_args.push(("plan", plan.into()));
                task_args.push(("run", run.into()));
                task_args.push(("stage", (stage_idx as u64).into()));
                task_args.push(("partition", (task.index as u64).into()));
                task_args.push(("attempt", 0u64.into()));
                task_args.push(("kind", kind.into()));
            }
            collector.push(TraceEvent {
                name: format!("{kind}[{}]", task.index),
                cat: "sim.task",
                pid,
                tid: task.slot as u32,
                ts_us: us(task.start_secs),
                dur_us: dur_us(task.start_secs, task.end_secs),
                args: task_args,
            });
        }
    }
    pid
}

/// Simulate `chain` on `cluster` and record the resulting timeline. No-op
/// returning `None` when tracing is disabled.
pub fn record_chain(label: &str, cluster: &ClusterModel, chain: &ChainMetrics) -> Option<u32> {
    let collector = ssj_observe::collector()?;
    let schedules = cluster.simulate_chain_schedule(chain);
    Some(record_sim_schedule(&collector, label, cluster, &schedules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_mapreduce::{Dataset, Emitter, JobBuilder, Mapper, Reducer};
    use ssj_observe::ChromeTrace;
    use std::sync::Arc;

    struct Id;
    impl Mapper for Id {
        type InKey = u32;
        type InValue = u32;
        type OutKey = u32;
        type OutValue = u32;
        fn map(&mut self, k: u32, v: u32, out: &mut Emitter<u32, u32>) {
            out.emit(k % 4, v);
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = u32;
        type InValue = u32;
        type OutKey = u32;
        type OutValue = u32;
        fn reduce(&mut self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>) {
            out.emit(*k, vs.iter().sum());
        }
    }

    #[test]
    fn sim_timeline_renders_schedule() {
        let input = Dataset::from_records((0..64u32).map(|i| (i, i)).collect::<Vec<_>>(), 4);
        let (_, metrics) =
            JobBuilder::new("simtrace-job")
                .reduce_tasks(4)
                .run(&input, |_| Id, |_| Sum);
        let mut chain = ChainMetrics::default();
        chain.push(metrics);

        let cluster = ClusterModel::paper_default(3);
        let collector = Arc::new(Collector::new());
        let schedules = cluster.simulate_chain_schedule(&chain);
        let pid = record_sim_schedule(&collector, "test-run", &cluster, &schedules);
        assert!(pid >= SIM_PID_BASE);

        let trace = ChromeTrace::from_collector(&collector);
        // One job bar + 4 map + 4 reduce tasks at minimum (shuffle bar only
        // when simulated shuffle time is non-zero).
        assert!(trace.len() >= 9, "got {} events", trace.len());
        let json = trace.to_json();
        assert!(json.contains("\"simtrace-job\""));
        assert!(json.contains("node0/slot0"));
        assert!(json.contains("sim: test-run (3 nodes × 3 slots)"));
        // Every task lane is within the modelled slot range.
        for ev in trace.events() {
            if ev.cat == "sim.task" {
                assert!((ev.tid as usize) < cluster.total_slots());
            }
        }
    }
}
