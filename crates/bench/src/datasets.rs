//! Experiment datasets: deterministic synthetic analogues of the paper's
//! three corpora (Table III), at the scales each experiment needs.

use ssj_text::{encode, Collection, CorpusProfile};

/// Experiment dataset scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's "big datasets" analogue (Figures 6, 8–13): the full
    /// reference configuration of each profile.
    Large,
    /// The paper's "small datasets" analogue (Figure 7, Table IV): sampled
    /// down so the explosion-prone baselines can finish.
    Small,
    /// Tiny corpora for Criterion benches (seconds, not minutes).
    Bench,
}

impl Scale {
    fn fraction(self) -> f64 {
        match self {
            Scale::Large => 1.0,
            Scale::Small => 0.12,
            Scale::Bench => 0.04,
        }
    }
}

/// Build (generate + encode) one profile at one scale. Deterministic.
pub fn corpus(profile: CorpusProfile, scale: Scale) -> Collection {
    let base = profile.config();
    let records = ((base.num_records as f64) * scale.fraction()).round() as usize;
    encode(&base.with_records(records.max(20)).generate())
}

/// The shared tiny corpus used by the Criterion benches.
pub fn bench_corpus() -> Collection {
    corpus(CorpusProfile::WikiLike, Scale::Bench)
}

/// Deterministic **asymmetric** R×S pair for the two-input join probes:
/// S is the profile at `scale`, R is an eighth of it (|R| ≪ |S|, the
/// shape where broadcasting/replicating the small side is tempting and
/// the two-input plan's per-side prefix stages pay off). Both sides are
/// encoded together ([`ssj_text::encode::encode_two`]) so they share one
/// token-rank space, as `fsjoin::run_rs_join_two_input` requires.
pub fn rs_corpus(profile: CorpusProfile, scale: Scale) -> (Collection, Collection) {
    let base = profile.config();
    let s_records = (((base.num_records as f64) * scale.fraction()).round() as usize).max(40);
    let r_records = (s_records / 8).max(5);
    // Same seed, fewer records: R's documents recur in S (the generator
    // draws records sequentially), so cross-side matches actually exist
    // and the probes' digests pin real pairs, not an empty set.
    let s_raw = base.clone().with_records(s_records).generate();
    let r_raw = base.with_records(r_records).generate();
    ssj_text::encode::encode_two(&r_raw, &s_raw)
}

/// The paper-matched FS-Join configuration for a profile: 30 vertical
/// fragments everywhere (§VI-F), horizontal partitions per dataset —
/// 10 for Email, 70 for PubMed, 50 for Wiki (Figure 13's setup), i.e.
/// `t = (partitions − 1) / 2` pivots. Horizontal granularity is what
/// splits each frequent token's posting list across length bands and
/// keeps per-cell join work bounded.
pub fn tuned_fsjoin(profile: CorpusProfile) -> fsjoin::FsJoinConfig {
    let h_pivots = match profile {
        CorpusProfile::EmailLike => 5,   // 11 horizontal partitions
        CorpusProfile::PubMedLike => 35, // 71
        CorpusProfile::WikiLike => 25,   // 51
    };
    fsjoin::FsJoinConfig::default()
        .with_fragments(30)
        .with_horizontal(h_pivots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let large = corpus(CorpusProfile::WikiLike, Scale::Large);
        let small = corpus(CorpusProfile::WikiLike, Scale::Small);
        let bench = corpus(CorpusProfile::WikiLike, Scale::Bench);
        assert!(large.len() > small.len());
        assert!(small.len() > bench.len());
        assert!(bench.len() >= 20);
    }

    #[test]
    fn deterministic() {
        let a = corpus(CorpusProfile::EmailLike, Scale::Bench);
        let b = corpus(CorpusProfile::EmailLike, Scale::Bench);
        assert_eq!(a.pool(), b.pool());
    }
}
