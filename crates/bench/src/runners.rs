//! Unified runner over FS-Join and the baselines, producing comparable
//! outcomes (real time, simulated cluster time, shuffle volume, balance).

use fsjoin::FsJoinConfig;
use ssj_baselines::massjoin::{massjoin, MassJoinVariant};
use ssj_baselines::ridpairs::ridpairs_ppjoin;
use ssj_baselines::vsmart::vsmart_join;
use ssj_baselines::BaselineConfig;
use ssj_mapreduce::{ChainMetrics, ClusterModel};
use ssj_similarity::Measure;
use ssj_text::Collection;
use std::time::Instant;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// FS-Join with defaults (Even-TF, Prefix kernel, all filters,
    /// horizontal partitioning on).
    FsJoin,
    /// FS-Join without horizontal partitioning (the paper's FS-Join-V).
    FsJoinV,
    /// RIDPairsPPJoin (Vernica et al.).
    RidPairs,
    /// V-Smart-Join, Online-Aggregation.
    VSmart,
    /// MassJoin, Merge variant.
    MassJoinMerge,
    /// MassJoin, Merge+Light variant.
    MassJoinLight,
}

impl Algorithm {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::FsJoin => "FS-Join",
            Algorithm::FsJoinV => "FS-Join-V",
            Algorithm::RidPairs => "RIDPairsPPJoin",
            Algorithm::VSmart => "V-Smart-Join",
            Algorithm::MassJoinMerge => "MassJoin(Merge)",
            Algorithm::MassJoinLight => "MassJoin(Merge+Light)",
        }
    }

    /// The five externally comparable algorithms (paper Figure 7 order).
    pub fn all_five() -> [Algorithm; 5] {
        [
            Algorithm::FsJoin,
            Algorithm::RidPairs,
            Algorithm::VSmart,
            Algorithm::MassJoinMerge,
            Algorithm::MassJoinLight,
        ]
    }
}

/// Did the run complete?
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Completed.
    Ok,
    /// Did not finish (budget exceeded — the paper's "cannot run
    /// completely"), with the reason.
    Dnf(String),
}

/// A comparable outcome of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Completion status.
    pub status: RunStatus,
    /// Number of result pairs.
    pub result_pairs: usize,
    /// Real single-machine wall-clock seconds.
    pub real_secs: f64,
    /// Simulated makespan on the given cluster.
    pub sim_secs: f64,
    /// Total shuffled bytes across the pipeline.
    pub shuffle_bytes: usize,
    /// Byte-level duplication factor of the pipeline's first job (the
    /// signature/filter job, where the algorithms differ): shuffled bytes ÷
    /// map input bytes. FS-Join stays near 1 (disjoint segments, metadata
    /// only); signature joins re-ship records per signature.
    pub duplication: f64,
    /// Max/mean skew of reduce-task input bytes of the first job.
    pub reduce_skew: f64,
    /// Full per-job metrics when the run completed.
    pub chain: Option<ChainMetrics>,
}

impl RunOutcome {
    /// Simulated makespan on an arbitrary cluster model (NaN for DNFs).
    pub fn sim_secs_on(&self, cluster: &ClusterModel) -> f64 {
        self.chain
            .as_ref()
            .map_or(f64::NAN, |ch| cluster.simulate_chain(ch).total_secs())
    }

    fn dnf(algorithm: &'static str, reason: String) -> Self {
        RunOutcome {
            algorithm,
            status: RunStatus::Dnf(reason),
            result_pairs: 0,
            real_secs: f64::NAN,
            sim_secs: f64::NAN,
            shuffle_bytes: 0,
            duplication: f64::NAN,
            reduce_skew: f64::NAN,
            chain: None,
        }
    }

    fn from_chain(
        algorithm: &'static str,
        pairs: usize,
        real_secs: f64,
        chain: ChainMetrics,
        cluster: &ClusterModel,
    ) -> Self {
        Self::from_chain_with_deps(algorithm, pairs, real_secs, chain, cluster, None)
    }

    /// Like [`Self::from_chain`], but when the run came from a declared
    /// `Plan` its dependency vector rides along: the recorded simulated
    /// timeline is then the *pipelined* [`ClusterModel::simulate_plan`]
    /// schedule, stamped with the same `(plan, run, stage, partition)` args
    /// the real `PlanRunner` puts on its spans — so `ssj-prof` analyses it
    /// identically. `sim_secs` stays the sequential chain makespan either
    /// way (the cross-algorithm comparable quantity).
    fn from_chain_with_deps(
        algorithm: &'static str,
        pairs: usize,
        real_secs: f64,
        chain: ChainMetrics,
        cluster: &ClusterModel,
        deps: Option<(&str, &[Vec<usize>])>,
    ) -> Self {
        let sim_secs = cluster.simulate_chain(&chain).total_secs();
        // When tracing is on, also render the simulated cluster occupancy
        // for this run next to the real host spans.
        match deps {
            Some((plan_name, deps)) => {
                if let Some(collector) = ssj_observe::collector() {
                    let schedules = cluster.simulate_plan(&chain, deps);
                    crate::simtrace::record_plan_schedule(
                        &collector, plan_name, cluster, &schedules, deps,
                    );
                }
            }
            None => {
                crate::simtrace::record_chain(algorithm, cluster, &chain);
            }
        }
        let first = chain.jobs.first().expect("non-empty chain");
        RunOutcome {
            algorithm,
            status: RunStatus::Ok,
            result_pairs: pairs,
            real_secs,
            sim_secs,
            shuffle_bytes: chain.total_shuffle_bytes(),
            duplication: first.byte_expansion(),
            reduce_skew: first.reduce_input_balance().skew,
            chain: Some(chain),
        }
    }
}

/// Run one algorithm on one collection, with `reduce_tasks = 3 × nodes`
/// (the paper's setting) and cluster simulation at `nodes`.
pub fn run_algorithm(
    algo: Algorithm,
    collection: &Collection,
    measure: Measure,
    theta: f64,
    nodes: usize,
) -> RunOutcome {
    run_algorithm_cfg(
        algo,
        collection,
        measure,
        theta,
        nodes,
        &FsJoinConfig::default(),
    )
}

/// Like [`run_algorithm`], but with an FS-Join configuration template
/// (kernel / pivots / filters / horizontal are taken from it; θ, measure
/// and task counts are overridden here).
pub fn run_algorithm_cfg(
    algo: Algorithm,
    collection: &Collection,
    measure: Measure,
    theta: f64,
    nodes: usize,
    fs_template: &FsJoinConfig,
) -> RunOutcome {
    let cluster = ClusterModel::paper_default(nodes);
    let reduce_tasks = 3 * nodes;
    let map_tasks = 2 * nodes;
    let base_cfg = BaselineConfig::default().with_tasks(map_tasks, reduce_tasks);
    let start = Instant::now();
    match algo {
        Algorithm::FsJoin | Algorithm::FsJoinV => {
            let mut cfg = fs_template
                .clone()
                .with_theta(theta)
                .with_measure(measure)
                .with_tasks(map_tasks, reduce_tasks);
            if algo == Algorithm::FsJoinV {
                cfg = cfg.with_horizontal(0);
            }
            let res = fsjoin::run_self_join(collection, &cfg);
            RunOutcome::from_chain_with_deps(
                algo.name(),
                res.pairs.len(),
                start.elapsed().as_secs_f64(),
                res.chain,
                &cluster,
                Some(("fsjoin", &res.deps)),
            )
        }
        Algorithm::RidPairs => {
            let res = ridpairs_ppjoin(collection, measure, theta, &base_cfg);
            RunOutcome::from_chain(
                algo.name(),
                res.pairs.len(),
                start.elapsed().as_secs_f64(),
                res.chain,
                &cluster,
            )
        }
        Algorithm::VSmart => match vsmart_join(collection, measure, theta, &base_cfg) {
            Ok(res) => RunOutcome::from_chain(
                algo.name(),
                res.pairs.len(),
                start.elapsed().as_secs_f64(),
                res.chain,
                &cluster,
            ),
            Err(e) => RunOutcome::dnf(algo.name(), e.to_string()),
        },
        Algorithm::MassJoinMerge | Algorithm::MassJoinLight => {
            let variant = if algo == Algorithm::MassJoinMerge {
                MassJoinVariant::Merge
            } else {
                MassJoinVariant::MergeLight
            };
            match massjoin(collection, measure, theta, variant, &base_cfg) {
                Ok(res) => RunOutcome::from_chain(
                    algo.name(),
                    res.pairs.len(),
                    start.elapsed().as_secs_f64(),
                    res.chain,
                    &cluster,
                ),
                Err(e) => RunOutcome::dnf(algo.name(), e.to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{corpus, Scale};
    use ssj_text::CorpusProfile;

    #[test]
    fn all_algorithms_agree_on_bench_corpus() {
        let c = corpus(CorpusProfile::WikiLike, Scale::Bench);
        let mut result_counts = Vec::new();
        for algo in Algorithm::all_five() {
            let out = run_algorithm(algo, &c, Measure::Jaccard, 0.8, 10);
            assert_eq!(out.status, RunStatus::Ok, "{algo:?}");
            assert!(out.sim_secs.is_finite());
            result_counts.push(out.result_pairs);
        }
        assert!(
            result_counts.windows(2).all(|w| w[0] == w[1]),
            "algorithms disagree: {result_counts:?}"
        );
    }

    #[test]
    fn dnf_reported_on_tiny_budget() {
        let c = corpus(CorpusProfile::WikiLike, Scale::Bench);
        // Simulate the paper's "cannot run on large data" by shrinking the
        // budget instead of growing the data.
        let out = {
            let cfg = BaselineConfig::default().with_budget(10);
            match ssj_baselines::vsmart::vsmart_join(&c, Measure::Jaccard, 0.8, &cfg) {
                Ok(_) => panic!("expected budget error"),
                Err(e) => RunOutcome::dnf(Algorithm::VSmart.name(), e.to_string()),
            }
        };
        assert!(matches!(out.status, RunStatus::Dnf(_)));
        assert!(out.real_secs.is_nan());
    }
}
