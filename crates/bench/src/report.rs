//! Result reporting: markdown sections written under `results/` at the
//! workspace root.

use std::path::PathBuf;

/// Workspace-root `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir.canonicalize().expect("canonicalize results dir")
}

/// Write one experiment's markdown report to `results/<id>.md` and echo it
/// to stdout.
pub fn publish(id: &str, markdown: &str) {
    let path = results_dir().join(format!("{id}.md"));
    std::fs::write(&path, markdown).expect("write report");
    println!("{markdown}");
    ssj_observe::info!("[expt] wrote {}", path.display());
}

/// Format a simulated-seconds cell, with `DNF` for failed runs.
pub fn secs_cell(secs: f64) -> String {
    if secs.is_nan() {
        "DNF".to_string()
    } else {
        format!("{secs:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_and_cells_format() {
        assert!(results_dir().is_dir());
        assert_eq!(secs_cell(1.234), "1.23");
        assert_eq!(secs_cell(f64::NAN), "DNF");
    }
}
