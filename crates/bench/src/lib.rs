//! Experiment harness for the FS-Join reproduction.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! corresponding experiment in [`experiments`]; the `expt` binary runs them
//! and writes paper-style markdown tables under `results/`:
//!
//! ```text
//! cargo run --release -p ssj-bench --bin expt -- all
//! cargo run --release -p ssj-bench --bin expt -- fig6 table4
//! ```
//!
//! The Criterion benches under `benches/` exercise a scaled-down version of
//! each exhibit (plus kernel micro-benchmarks) so `cargo bench` tracks
//! regressions on every comparison the paper makes.

pub mod datasets;
pub mod experiments;
pub mod regress;
pub mod report;
pub mod runners;
pub mod serve_load;
pub mod simtrace;

pub use datasets::{bench_corpus, corpus, tuned_fsjoin, Scale};
pub use regress::{calibrate_unit_secs, BenchReport};
pub use runners::{run_algorithm, Algorithm, RunOutcome, RunStatus};
pub use serve_load::{closed_loop, replay_queries, ServeLoadReport};
