//! RIDPairsPPJoin (Vernica, Carey, Li — SIGMOD 2010), the paper's main
//! competitor.
//!
//! Stage "kernel": the map side emits the *whole record* once per prefix
//! token (the duplication FS-Join eliminates — a record with prefix length
//! `p` is shuffled `p` times); the reduce side groups by token and runs an
//! in-memory PPJoin over each group. Stage "dedup": identical pairs found
//! in multiple groups are collapsed.
//!
//! Load-balancing note reproduced from the paper: reduce groups are keyed
//! by tokens, so group sizes follow the token-frequency distribution — no
//! balance guarantee (contrast with FS-Join's `Even-TF` fragments).

use crate::dedup::{add_dedup_stage, collect_pairs};
use crate::{BaselineConfig, JoinRunResult};
use ssj_mapreduce::{Dataset, Emitter, Mapper, Plan, PlanRunner, Reducer};
use ssj_similarity::ppjoin::ppjoin_self_join;
use ssj_similarity::Measure;
use ssj_text::{Collection, Record};

/// Kernel mapper: `(prefix token, record)` per prefix token.
struct SignatureMapper {
    measure: Measure,
    theta: f64,
}

impl Mapper for SignatureMapper {
    type InKey = u32;
    type InValue = Record;
    type OutKey = u32;
    type OutValue = Record;

    fn map(&mut self, _rid: u32, record: Record, out: &mut Emitter<u32, Record>) {
        let prefix = self.measure.probe_prefix_len(self.theta, record.len());
        for i in 0..prefix {
            let token = record.tokens[i];
            out.emit(token, record.clone());
        }
    }
}

/// Kernel reducer: PPJoin within each token group.
struct GroupPPJoinReducer {
    measure: Measure,
    theta: f64,
}

impl Reducer for GroupPPJoinReducer {
    type InKey = u32;
    type InValue = Record;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce(&mut self, _token: &u32, group: Vec<Record>, out: &mut Emitter<(u32, u32), f64>) {
        if group.len() < 2 {
            return;
        }
        for pair in ppjoin_self_join(&group, self.measure, self.theta) {
            out.emit(pair.ids(), pair.sim);
        }
    }
}

/// Run RIDPairsPPJoin end-to-end (a two-stage kernel + dedup plan; the
/// dedup stage's maps start partition-by-partition while kernel reducers
/// are still running when [`BaselineConfig::plan_mode`] is pipelined).
pub fn ridpairs_ppjoin(
    collection: &Collection,
    measure: Measure,
    theta: f64,
    cfg: &BaselineConfig,
) -> JoinRunResult {
    assert!(theta > 0.0 && theta <= 1.0, "θ must be in (0,1]");
    let input: Dataset<u32, Record> = Dataset::from_records(
        collection
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| (v.id, v.to_record()))
            .collect(),
        cfg.map_tasks,
    );
    let mut plan = Plan::new("ridpairs").with_workers(cfg.workers);
    let raw = plan.add(
        "ridpairs-kernel",
        input,
        cfg.reduce_tasks,
        move |_| SignatureMapper { measure, theta },
        move |_| GroupPPJoinReducer { measure, theta },
    );
    let unique = add_dedup_stage(&mut plan, raw, cfg.reduce_tasks, "ridpairs-dedup");
    let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
    let pairs = collect_pairs(outcome.take_output(unique));
    JoinRunResult {
        pairs,
        peak_live_bytes: outcome.peak_live_bytes,
        chain: outcome.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_similarity::naive::naive_self_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::{encode, CorpusProfile, RawCorpus, Tokenizer};

    fn small_collection() -> Collection {
        encode(
            &CorpusProfile::WikiLike
                .config()
                .with_records(150)
                .generate(),
        )
    }

    #[test]
    fn matches_oracle_across_thetas_and_measures() {
        let c = small_collection();
        for m in Measure::all() {
            for &theta in &[0.6, 0.75, 0.85, 0.95] {
                let want = naive_self_join(&c.views(), m, theta);
                let got = ridpairs_ppjoin(&c, m, theta, &BaselineConfig::default());
                compare_results(&got.pairs, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("{m:?} θ={theta}: {e}"));
            }
        }
    }

    #[test]
    fn duplication_factor_exceeds_one() {
        // The defining inefficiency: records are shuffled once per prefix
        // token, so map output records ≫ input records at moderate θ.
        let c = small_collection();
        let got = ridpairs_ppjoin(&c, Measure::Jaccard, 0.75, &BaselineConfig::default());
        let kernel = got.chain.job("ridpairs-kernel").unwrap();
        assert!(
            kernel.record_expansion() > 2.0,
            "expansion {}",
            kernel.record_expansion()
        );
        assert!(kernel.byte_expansion() > 2.0);
    }

    #[test]
    fn lower_theta_means_more_duplication() {
        let c = small_collection();
        let hi = ridpairs_ppjoin(&c, Measure::Jaccard, 0.9, &BaselineConfig::default());
        let lo = ridpairs_ppjoin(&c, Measure::Jaccard, 0.6, &BaselineConfig::default());
        let bytes = |r: &JoinRunResult| r.chain.job("ridpairs-kernel").unwrap().shuffle_bytes;
        assert!(bytes(&lo) > bytes(&hi));
    }

    #[test]
    fn exact_duplicates_in_text() {
        let corpus =
            RawCorpus::from_texts(&["a b c d e", "a b c d e", "f g h i j"], &Tokenizer::Words);
        let c = encode(&corpus);
        let got = ridpairs_ppjoin(&c, Measure::Jaccard, 0.99, &BaselineConfig::default());
        assert_eq!(got.pairs.len(), 1);
        assert_eq!(got.pairs[0].ids(), (0, 1));
        assert!((got.pairs[0].sim - 1.0).abs() < 1e-12);
    }
}
