//! V-Smart-Join, Online-Aggregation variant (Metwally & Faloutsos,
//! VLDB 2012).
//!
//! Phase "Join": every token of every record is emitted as a key — the
//! shuffle materializes a full inverted index — and each reduce group
//! enumerates *all* pairs in its posting list, emitting a partial count per
//! pair. Phase "Similarity": partial counts are aggregated per pair and the
//! threshold is applied at the very end. No filtering anywhere, which is
//! why the paper finds it cannot complete on large inputs: the pair
//! enumeration is Σ_token C(df_token, 2). We compute that sum up front and
//! refuse to run past [`BaselineConfig::intermediate_budget`], mirroring
//! "cannot run completely" without hanging the test suite.

use crate::{BaselineConfig, BudgetExceeded, JoinRunResult};
use ssj_mapreduce::{Dataset, Emitter, GroupValues, Mapper, Plan, PlanRunner, StreamingReducer};
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{Collection, Record};

/// Join-phase mapper: `(token, (rid, len))` for every token.
struct TokenMapper;

impl Mapper for TokenMapper {
    type InKey = u32;
    type InValue = Record;
    type OutKey = u32;
    type OutValue = (u32, u32);

    fn map(&mut self, _rid: u32, record: Record, out: &mut Emitter<u32, (u32, u32)>) {
        for &t in &record.tokens {
            out.emit(t, (record.id, record.len() as u32));
        }
    }
}

/// Join-phase reducer: enumerate all pairs of the posting list. Streams
/// each posting list into a scratch buffer reused across tokens (pair
/// enumeration needs random access, so the list must be materialized, but
/// its allocation is amortized over the whole task).
#[derive(Default)]
struct PairEnumReducer {
    scratch: Vec<(u32, u32)>,
}

impl StreamingReducer for PairEnumReducer {
    type InKey = u32;
    type InValue = (u32, u32);
    type OutKey = (u32, u32);
    type OutValue = (u32, u32, u32);

    fn reduce_group(
        &mut self,
        _token: &u32,
        values: &mut GroupValues<'_, '_, u32, (u32, u32)>,
        out: &mut Emitter<(u32, u32), (u32, u32, u32)>,
    ) {
        self.scratch.clear();
        self.scratch.extend(values.copied());
        let postings = &self.scratch;
        for i in 0..postings.len() {
            let (rid_a, len_a) = postings[i];
            for &(rid_b, len_b) in &postings[i + 1..] {
                let ((a, la), (b, lb)) = if rid_a < rid_b {
                    ((rid_a, len_a), (rid_b, len_b))
                } else {
                    ((rid_b, len_b), (rid_a, len_a))
                };
                out.emit((a, b), (1, la, lb));
            }
        }
    }
}

/// Similarity-phase mapper: identity.
struct PartialMapper;

impl Mapper for PartialMapper {
    type InKey = (u32, u32);
    type InValue = (u32, u32, u32);
    type OutKey = (u32, u32);
    type OutValue = (u32, u32, u32);

    fn map(
        &mut self,
        pair: (u32, u32),
        payload: (u32, u32, u32),
        out: &mut Emitter<(u32, u32), (u32, u32, u32)>,
    ) {
        out.emit(pair, payload);
    }
}

/// Similarity-phase reducer: aggregate counts, apply θ at the end.
/// Streams — the count folds partial-by-partial, nothing is buffered.
struct AggregateReducer {
    measure: Measure,
    theta: f64,
}

impl StreamingReducer for AggregateReducer {
    type InKey = (u32, u32);
    type InValue = (u32, u32, u32);
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        partials: &mut GroupValues<'_, '_, (u32, u32), (u32, u32, u32)>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        let (mut c, mut la, mut lb) = (0usize, 0usize, 0usize);
        for &(n, a, b) in partials {
            c += n as usize;
            la = a as usize;
            lb = b as usize;
        }
        if self.measure.passes(c, la, lb, self.theta) {
            out.emit(*pair, self.measure.score(c, la, lb));
        }
    }
}

/// Exact number of pair records the join phase would emit:
/// `Σ_token C(df_token, 2)`.
pub fn estimate_pair_emissions(collection: &Collection) -> u64 {
    collection
        .token_freqs
        .iter()
        .map(|&df| df * df.saturating_sub(1) / 2)
        .sum()
}

/// Bytes the pair enumeration would materialize: each pair record is an
/// 8-byte key plus a 12-byte payload.
pub fn estimate_pair_bytes(collection: &Collection) -> u64 {
    estimate_pair_emissions(collection) * 20
}

/// Run V-Smart-Join Online-Aggregation end-to-end.
///
/// Returns [`BudgetExceeded`] when the (exactly predictable) pair
/// enumeration would exceed the configured budget.
pub fn vsmart_join(
    collection: &Collection,
    measure: Measure,
    theta: f64,
    cfg: &BaselineConfig,
) -> Result<JoinRunResult, BudgetExceeded> {
    assert!(theta > 0.0 && theta <= 1.0, "θ must be in (0,1]");
    let estimated = estimate_pair_bytes(collection);
    if estimated > cfg.intermediate_budget {
        return Err(BudgetExceeded {
            algorithm: "V-Smart-Join",
            estimated,
            budget: cfg.intermediate_budget,
        });
    }

    let input: Dataset<u32, Record> = Dataset::from_records(
        collection
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| (v.id, v.to_record()))
            .collect(),
        cfg.map_tasks,
    );
    let mut plan = Plan::new("vsmart").with_workers(cfg.workers);
    let partials = plan.add(
        "vsmart-join",
        input,
        cfg.reduce_tasks,
        |_| TokenMapper,
        |_| PairEnumReducer::default(),
    );
    let aggregated = plan.add(
        "vsmart-similarity",
        partials,
        cfg.reduce_tasks,
        |_| PartialMapper,
        move |_| AggregateReducer { measure, theta },
    );
    let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
    let results = outcome.take_output(aggregated);

    let mut pairs: Vec<SimilarPair> = results
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|p| p.ids());
    Ok(JoinRunResult {
        pairs,
        peak_live_bytes: outcome.peak_live_bytes,
        chain: outcome.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_similarity::naive::naive_self_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::{encode, CorpusProfile};

    fn small_collection() -> Collection {
        encode(
            &CorpusProfile::WikiLike
                .config()
                .with_records(120)
                .generate(),
        )
    }

    #[test]
    fn matches_oracle() {
        let c = small_collection();
        for &theta in &[0.6, 0.8, 0.9] {
            let want = naive_self_join(&c.views(), Measure::Jaccard, theta);
            let got = vsmart_join(&c, Measure::Jaccard, theta, &BaselineConfig::default())
                .expect("within budget");
            compare_results(&got.pairs, &want, 1e-9).unwrap_or_else(|e| panic!("θ={theta}: {e}"));
        }
    }

    #[test]
    fn emission_estimate_is_exact() {
        let c = small_collection();
        let got = vsmart_join(&c, Measure::Jaccard, 0.8, &BaselineConfig::default()).unwrap();
        let join = got.chain.job("vsmart-join").unwrap();
        assert_eq!(
            join.reduce_tasks
                .iter()
                .map(|t| t.output_records)
                .sum::<usize>() as u64,
            estimate_pair_emissions(&c)
        );
    }

    #[test]
    fn theta_insensitive_intermediates() {
        // The paper notes V-Smart-Join's cost barely varies with θ: the
        // threshold is applied only in the last reduce.
        let c = small_collection();
        let lo = vsmart_join(&c, Measure::Jaccard, 0.6, &BaselineConfig::default()).unwrap();
        let hi = vsmart_join(&c, Measure::Jaccard, 0.95, &BaselineConfig::default()).unwrap();
        let inter = |r: &JoinRunResult| r.chain.job("vsmart-join").unwrap().shuffle_bytes;
        assert_eq!(inter(&lo), inter(&hi));
    }

    #[test]
    fn budget_aborts_before_materializing() {
        let c = small_collection();
        let tight = BaselineConfig::default().with_budget(10);
        let err = vsmart_join(&c, Measure::Jaccard, 0.8, &tight).unwrap_err();
        assert_eq!(err.algorithm, "V-Smart-Join");
        assert!(err.estimated > 10);
        assert!(err.to_string().contains("V-Smart-Join"));
    }
}
