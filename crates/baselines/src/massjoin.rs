//! MassJoin (Deng, Li, Hao, Wang, Feng — ICDE 2014), adapted from edit
//! distance to set similarity over globally-ordered token sequences.
//!
//! The scheme is Pass-Join's pigeonhole argument: if `sim(s,t) ≥ θ` with
//! `|s| ≤ |t|`, the symmetric difference obeys
//! `|s Δ t| ≤ τ(|s|,|t|) = |s|+|t| − 2·minoverlap(θ,|s|,|t|)`; partitioning
//! `s` into `m = τmax(|s|)+1` even segments guarantees at least one segment
//! is untouched by the Δ edits and therefore appears *contiguously* in `t`,
//! shifted by at most τ positions. So:
//!
//! * the shorter side emits its `m` segments as signatures;
//! * the longer side emits, for every admissible partner length `l` and
//!   segment index, all position-windowed substrings of that segment's
//!   length (this enumeration is the signature explosion the paper
//!   measures — MassJoin's first job turned 1.65 GB of Wiki into 105 GB);
//! * matching signatures yield candidates, deduplicated and verified.
//!
//! Two verification variants from the paper's experiments:
//! * **Merge** — full token vectors ride the shuffle; reducers verify
//!   in-place;
//! * **Merge+Light** — signatures carry rids only; a dedup job collapses
//!   candidates and a final job re-attaches records from a read-only
//!   replica (Hadoop distributed-cache style) to verify.

use crate::dedup::{add_dedup_stage, collect_pairs};
use crate::{BaselineConfig, BudgetExceeded, JoinRunResult};
use ssj_mapreduce::{
    Dataset, Emitter, GroupValues, Mapper, Plan, PlanRunner, Reducer, StreamingReducer,
};
use ssj_similarity::intersect::intersect_count_merge;
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{Collection, Record};
use std::sync::Arc;

/// Verification variant (paper §VI-A: "Merge" and "Merge+Light").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MassJoinVariant {
    /// Full records ride the shuffle with every signature.
    Merge,
    /// Signatures carry rids only; records re-attached at verification.
    MergeLight,
}

impl MassJoinVariant {
    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            MassJoinVariant::Merge => "Merge",
            MassJoinVariant::MergeLight => "Merge+Light",
        }
    }
}

/// Maximum symmetric difference of any θ-admissible partner pair where the
/// shorter side has length `l`.
fn tau_max(measure: Measure, theta: f64, l: usize) -> usize {
    let lmax = measure.max_partner_len(theta, l);
    l + lmax - 2 * measure.min_overlap(theta, l, lmax)
}

/// Symmetric-difference budget for the exact pair of lengths.
fn tau(measure: Measure, theta: f64, l: usize, lt: usize) -> usize {
    l + lt - 2 * measure.min_overlap(theta, l, lt)
}

/// Number of segments for a shorter-side record of length `l`.
///
/// # Panics
/// Panics when the pigeonhole scheme is inapplicable (`τmax ≥ l`), i.e.
/// the threshold is too low for this measure (Jaccard needs θ > 0.5).
fn m_segments(measure: Measure, theta: f64, l: usize) -> usize {
    let t = tau_max(measure, theta, l);
    assert!(
        t < l,
        "MassJoin's segment scheme needs τmax < record length; θ={theta} is \
         too low for {measure:?} at length {l} (τmax={t})"
    );
    t + 1
}

/// Even partition of `0..l` into `m` segments: `(start, len)` per segment,
/// the first `l % m` segments one longer.
fn even_partition(l: usize, m: usize) -> Vec<(usize, usize)> {
    let base = l / m;
    let rem = l % m;
    let mut out = Vec::with_capacity(m);
    let mut start = 0usize;
    for i in 0..m {
        let len = base + usize::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Signature key: (shorter-side length, segment index, segment tokens).
type SigKey = (u32, u32, Vec<u32>);
/// Signature value: (role, rid, record length, tokens-if-Merge).
type SigValue = (u8, u32, u32, Vec<u32>);

const ROLE_INDEXED: u8 = 0;
const ROLE_PROBE: u8 = 1;

/// Multi-match-aware start-position window (PassJoin's substring
/// selection, which MassJoin inherits) for segment `i0` (0-based) starting
/// at `start` with length `len` in an `l`-length partner, probed inside a
/// record of length `lt ≥ l` with difference budget `t = τ`.
///
/// The shift `start_t − start` is bounded by
/// `[max(−i0, Δ − (τ − i0)), min(i0, Δ + (τ − i0))]` with `Δ = lt − l`:
/// a larger left/right shift implies ≥ i0+1 edits before the segment (or
/// `> τ − i0` after it), and the pigeonhole recursion then guarantees a
/// *different* untouched segment matches within its own window, so
/// completeness holds globally (exercised by the oracle-agreement tests).
/// Empty windows return `None`.
fn substring_window(
    i0: usize,
    start: usize,
    len: usize,
    l: usize,
    lt: usize,
    t: usize,
) -> Option<(usize, usize)> {
    let delta = (lt - l) as i64;
    let i = i0 as i64;
    let tau = t as i64;
    let lo_shift = (-i).max(delta - (tau - i));
    let hi_shift = i.min(delta + (tau - i));
    let lo = (start as i64 + lo_shift).max(0) as usize;
    let hi = ((start as i64 + hi_shift).min((lt - len) as i64)).max(0) as usize;
    (hi >= lo && start as i64 + hi_shift >= 0).then_some((lo, hi))
}

/// Exact count and byte volume of the signature records the map phase will
/// emit (used for the budget guard; this is the quantity that exploded to
/// 105 GB in the paper's Wiki run). Byte accounting matches the engine's
/// [`ssj_common::ByteSize`] encoding exactly (verified in tests).
pub fn signature_volume(
    collection: &Collection,
    measure: Measure,
    theta: f64,
    carry_tokens: bool,
) -> (u64, u64) {
    let mut records = 0u64;
    let mut bytes = 0u64;
    // key (l, idx, tokens) = 4 + 4 + (4 + 4·seg_len);
    // value (role, rid, len, tokens) = 1 + 4 + 4 + (4 + 4·carried).
    let mut account = |seg_len: usize, rec_len: usize| {
        records += 1;
        let carried = if carry_tokens { rec_len } else { 0 };
        bytes += (12 + 4 * seg_len + 13 + 4 * carried) as u64;
    };
    for r in collection.iter() {
        let lt = r.len();
        if lt == 0 {
            continue;
        }
        let m = m_segments(measure, theta, lt);
        for (_, len) in even_partition(lt, m) {
            account(len, lt); // indexed role
        }
        let lmin = measure.min_partner_len(theta, lt).max(1);
        for l in lmin..=lt {
            let m = m_segments(measure, theta, l);
            let t = tau(measure, theta, l, lt);
            for (i0, (start, len)) in even_partition(l, m).into_iter().enumerate() {
                if len == 0 {
                    continue;
                }
                if let Some((lo, hi)) = substring_window(i0, start, len, l, lt, t) {
                    for _ in lo..=hi {
                        account(len, lt);
                    }
                }
            }
        }
    }
    (records, bytes)
}

/// Exact count of signature records the map phase will emit.
pub fn estimate_signatures(collection: &Collection, measure: Measure, theta: f64) -> u64 {
    signature_volume(collection, measure, theta, false).0
}

/// Map: emit indexed segments and probe substrings.
struct SignatureMapper {
    measure: Measure,
    theta: f64,
    carry_tokens: bool,
}

impl Mapper for SignatureMapper {
    type InKey = u32;
    type InValue = Record;
    type OutKey = SigKey;
    type OutValue = SigValue;

    fn map(&mut self, _rid: u32, record: Record, out: &mut Emitter<SigKey, SigValue>) {
        let lt = record.len();
        if lt == 0 {
            return;
        }
        let payload = |toks: &Vec<u32>| {
            if self.carry_tokens {
                toks.clone()
            } else {
                Vec::new()
            }
        };
        // Indexed role: own even segments at own length.
        let m = m_segments(self.measure, self.theta, lt);
        for (i, (start, len)) in even_partition(lt, m).into_iter().enumerate() {
            out.emit(
                (
                    lt as u32,
                    i as u32,
                    record.tokens[start..start + len].to_vec(),
                ),
                (ROLE_INDEXED, record.id, lt as u32, payload(&record.tokens)),
            );
        }
        // Probe role: windowed substrings for every admissible shorter
        // partner length.
        let lmin = self.measure.min_partner_len(self.theta, lt).max(1);
        for l in lmin..=lt {
            let m = m_segments(self.measure, self.theta, l);
            let t = tau(self.measure, self.theta, l, lt);
            for (i, (start, len)) in even_partition(l, m).into_iter().enumerate() {
                if len == 0 {
                    continue;
                }
                let Some((lo, hi)) = substring_window(i, start, len, l, lt, t) else {
                    continue;
                };
                for st in lo..=hi {
                    out.emit(
                        (l as u32, i as u32, record.tokens[st..st + len].to_vec()),
                        (ROLE_PROBE, record.id, lt as u32, payload(&record.tokens)),
                    );
                }
            }
        }
    }
}

/// Merge-variant reducer: match indexed × probe and verify in place.
struct MergeReducer {
    measure: Measure,
    theta: f64,
}

impl Reducer for MergeReducer {
    type InKey = SigKey;
    type InValue = SigValue;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce(&mut self, _key: &SigKey, values: Vec<SigValue>, out: &mut Emitter<(u32, u32), f64>) {
        let (indexed, probes): (Vec<&SigValue>, Vec<&SigValue>) =
            values.iter().partition(|v| v.0 == ROLE_INDEXED);
        for &&(_, rid_s, len_s, ref toks_s) in &indexed {
            for &&(_, rid_t, len_t, ref toks_t) in &probes {
                if rid_s == rid_t {
                    continue;
                }
                let c = intersect_count_merge(toks_s, toks_t);
                if self
                    .measure
                    .passes(c, len_s as usize, len_t as usize, self.theta)
                {
                    let (a, b) = if rid_s < rid_t {
                        (rid_s, rid_t)
                    } else {
                        (rid_t, rid_s)
                    };
                    out.emit(
                        (a, b),
                        self.measure.score(c, len_s as usize, len_t as usize),
                    );
                }
            }
        }
    }
}

/// Light-variant reducer: emit unverified candidates (rids only).
struct LightReducer;

impl Reducer for LightReducer {
    type InKey = SigKey;
    type InValue = SigValue;
    type OutKey = (u32, u32);
    type OutValue = u8;

    fn reduce(&mut self, _key: &SigKey, values: Vec<SigValue>, out: &mut Emitter<(u32, u32), u8>) {
        let (indexed, probes): (Vec<&SigValue>, Vec<&SigValue>) =
            values.iter().partition(|v| v.0 == ROLE_INDEXED);
        for &&(_, rid_s, _, _) in &indexed {
            for &&(_, rid_t, _, _) in &probes {
                if rid_s == rid_t {
                    continue;
                }
                let (a, b) = if rid_s < rid_t {
                    (rid_s, rid_t)
                } else {
                    (rid_t, rid_s)
                };
                out.emit((a, b), 0);
            }
        }
    }
}

/// Candidate-dedup reducer for the Light variant. Streams: the group's
/// values are never read, so the engine skips them without buffering.
struct CandidateDedupReducer;

impl StreamingReducer for CandidateDedupReducer {
    type InKey = (u32, u32);
    type InValue = u8;
    type OutKey = (u32, u32);
    type OutValue = u8;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        _v: &mut GroupValues<'_, '_, (u32, u32), u8>,
        out: &mut Emitter<(u32, u32), u8>,
    ) {
        out.emit(*pair, 0);
    }
}

/// Identity mapper over candidate pairs.
struct CandidateMapper;

impl Mapper for CandidateMapper {
    type InKey = (u32, u32);
    type InValue = u8;
    type OutKey = (u32, u32);
    type OutValue = u8;

    fn map(&mut self, pair: (u32, u32), v: u8, out: &mut Emitter<(u32, u32), u8>) {
        out.emit(pair, v);
    }
}

/// Light-variant verification mapper: re-attach records from a read-only
/// replica (distributed-cache analogue) and verify exactly.
struct CachedVerifyMapper {
    records: Arc<Vec<Record>>,
    measure: Measure,
    theta: f64,
}

impl Mapper for CachedVerifyMapper {
    type InKey = (u32, u32);
    type InValue = u8;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn map(&mut self, (a, b): (u32, u32), _v: u8, out: &mut Emitter<(u32, u32), f64>) {
        let s = &self.records[a as usize];
        let t = &self.records[b as usize];
        let c = intersect_count_merge(&s.tokens, &t.tokens);
        if self.measure.passes(c, s.len(), t.len(), self.theta) {
            out.emit((a, b), self.measure.score(c, s.len(), t.len()));
        }
    }
}

/// Pass-through reducer keeping the single verified score (streaming
/// take-first).
struct KeepFirstReducer;

impl StreamingReducer for KeepFirstReducer {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        sims: &mut GroupValues<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        out.emit(*pair, *sims.next().expect("group has at least one value"));
    }
}

/// Run MassJoin end-to-end.
///
/// Requires record ids to be dense `0..n` (as produced by the encoders).
/// Returns [`BudgetExceeded`] when the (exactly predictable) signature
/// volume exceeds the configured budget.
pub fn massjoin(
    collection: &Collection,
    measure: Measure,
    theta: f64,
    variant: MassJoinVariant,
    cfg: &BaselineConfig,
) -> Result<JoinRunResult, BudgetExceeded> {
    assert!(theta > 0.0 && theta <= 1.0, "θ must be in (0,1]");
    let (_, estimated) = signature_volume(
        collection,
        measure,
        theta,
        variant == MassJoinVariant::Merge,
    );
    if estimated > cfg.intermediate_budget {
        return Err(BudgetExceeded {
            algorithm: "MassJoin",
            estimated,
            budget: cfg.intermediate_budget,
        });
    }

    let input: Dataset<u32, Record> = Dataset::from_records(
        collection
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| (v.id, v.to_record()))
            .collect(),
        cfg.map_tasks,
    );
    let (pairs, peak_live_bytes, chain) = match variant {
        MassJoinVariant::Merge => {
            let mut plan = Plan::new("massjoin").with_workers(cfg.workers);
            let raw = plan.add(
                "massjoin-signatures",
                input,
                cfg.reduce_tasks,
                move |_| SignatureMapper {
                    measure,
                    theta,
                    carry_tokens: true,
                },
                move |_| MergeReducer { measure, theta },
            );
            let unique = add_dedup_stage(&mut plan, raw, cfg.reduce_tasks, "massjoin-dedup");
            let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
            let pairs = collect_pairs(outcome.take_output(unique));
            (pairs, outcome.peak_live_bytes, outcome.metrics)
        }
        MassJoinVariant::MergeLight => {
            let mut plan = Plan::new("massjoin-light").with_workers(cfg.workers);
            let candidates = plan.add(
                "massjoin-signatures",
                input,
                cfg.reduce_tasks,
                move |_| SignatureMapper {
                    measure,
                    theta,
                    carry_tokens: false,
                },
                |_| LightReducer,
            );
            let unique = plan.add(
                "massjoin-candidate-dedup",
                candidates,
                cfg.reduce_tasks,
                |_| CandidateMapper,
                |_| CandidateDedupReducer,
            );
            let records = Arc::new(collection.to_records());
            let verified = plan.add(
                "massjoin-verify",
                unique,
                cfg.reduce_tasks,
                move |_| CachedVerifyMapper {
                    records: Arc::clone(&records),
                    measure,
                    theta,
                },
                |_| KeepFirstReducer,
            );
            let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
            let mut pairs: Vec<SimilarPair> = outcome
                .take_output(verified)
                .into_records()
                .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
                .collect();
            pairs.sort_unstable_by_key(|p| p.ids());
            (pairs, outcome.peak_live_bytes, outcome.metrics)
        }
    };

    Ok(JoinRunResult {
        pairs,
        chain,
        peak_live_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_similarity::naive::naive_self_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::{encode, CorpusProfile};

    fn small_collection() -> Collection {
        encode(
            &CorpusProfile::WikiLike
                .config()
                .with_records(100)
                .generate(),
        )
    }

    #[test]
    fn even_partition_covers_exactly() {
        for l in 1usize..30 {
            for m in 1..=l {
                let parts = even_partition(l, m);
                assert_eq!(parts.len(), m);
                let mut pos = 0;
                for (start, len) in parts {
                    assert_eq!(start, pos);
                    pos += len;
                }
                assert_eq!(pos, l);
            }
        }
    }

    #[test]
    fn m_segments_within_length() {
        for l in 1usize..200 {
            for &theta in &[0.6, 0.75, 0.9] {
                let m = m_segments(Measure::Jaccard, theta, l);
                assert!(m >= 1 && m <= l, "l={l} θ={theta} m={m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "too low")]
    fn theta_half_rejected_for_jaccard() {
        // θ=0.5 ⇒ τmax = l for Jaccard: the pigeonhole needs τmax < l.
        let _ = m_segments(Measure::Jaccard, 0.5, 40);
    }

    #[test]
    fn both_variants_match_oracle() {
        let c = small_collection();
        for variant in [MassJoinVariant::Merge, MassJoinVariant::MergeLight] {
            for &theta in &[0.7, 0.8, 0.9] {
                let want = naive_self_join(&c.views(), Measure::Jaccard, theta);
                let got = massjoin(
                    &c,
                    Measure::Jaccard,
                    theta,
                    variant,
                    &BaselineConfig::default(),
                )
                .expect("within budget");
                compare_results(&got.pairs, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("{variant:?} θ={theta}: {e}"));
            }
        }
    }

    #[test]
    fn signature_estimate_is_exact() {
        let c = small_collection();
        for (variant, carry) in [
            (MassJoinVariant::Merge, true),
            (MassJoinVariant::MergeLight, false),
        ] {
            let got = massjoin(
                &c,
                Measure::Jaccard,
                0.8,
                variant,
                &BaselineConfig::default(),
            )
            .unwrap();
            let sig = got.chain.job("massjoin-signatures").unwrap();
            let (records, bytes) = signature_volume(&c, Measure::Jaccard, 0.8, carry);
            assert_eq!(sig.map_output_records() as u64, records, "{variant:?}");
            assert_eq!(sig.pre_combine_bytes as u64, bytes, "{variant:?}");
        }
    }

    #[test]
    fn light_shuffles_fewer_bytes_than_merge() {
        let c = small_collection();
        let merge = massjoin(
            &c,
            Measure::Jaccard,
            0.8,
            MassJoinVariant::Merge,
            &BaselineConfig::default(),
        )
        .unwrap();
        let light = massjoin(
            &c,
            Measure::Jaccard,
            0.8,
            MassJoinVariant::MergeLight,
            &BaselineConfig::default(),
        )
        .unwrap();
        let sig_bytes =
            |r: &JoinRunResult| r.chain.job("massjoin-signatures").unwrap().shuffle_bytes;
        assert!(
            sig_bytes(&light) < sig_bytes(&merge) / 2,
            "light {} merge {}",
            sig_bytes(&light),
            sig_bytes(&merge)
        );
    }

    #[test]
    fn lower_theta_explodes_signatures() {
        let c = small_collection();
        let hi = estimate_signatures(&c, Measure::Jaccard, 0.9);
        let lo = estimate_signatures(&c, Measure::Jaccard, 0.6);
        assert!(lo > 3 * hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn budget_aborts() {
        let c = small_collection();
        let tight = BaselineConfig::default().with_budget(100);
        let err = massjoin(&c, Measure::Jaccard, 0.8, MassJoinVariant::Merge, &tight).unwrap_err();
        assert_eq!(err.algorithm, "MassJoin");
    }
}
