//! Result deduplication stage.
//!
//! Signature-based joins (RIDPairsPPJoin, MassJoin) discover the same pair
//! in every reduce group that holds one of its shared signatures, so a
//! final MapReduce stage collapses duplicates — exactly the paper's account
//! of why those pipelines carry an extra job that FS-Join does not need.
//! The stage is appended to the baseline's [`Plan`] so its maps can start
//! partition-by-partition while the kernel's reducers are still running.

use ssj_mapreduce::{
    Dataset, Emitter, GroupValues, Mapper, Plan, StageHandle, StageInput, StreamingReducer,
};
use ssj_similarity::SimilarPair;

/// Identity mapper over `((a, b), sim)`.
struct DedupMapper;

impl Mapper for DedupMapper {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn map(&mut self, pair: (u32, u32), sim: f64, out: &mut Emitter<(u32, u32), f64>) {
        out.emit(pair, sim);
    }
}

/// Keeps one score per pair. Streams: only the head of each group is
/// read, duplicates are skipped by the engine without buffering.
struct DedupReducer;

impl StreamingReducer for DedupReducer {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        sims: &mut GroupValues<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        // All duplicates carry the same exact score; keep the first.
        out.emit(*pair, *sims.next().expect("group has at least one value"));
    }
}

/// Append the dedup stage to `plan`, consuming `input` (a kernel stage's
/// candidate pairs or an external dataset) and returning the handle to the
/// unique pairs.
pub fn add_dedup_stage(
    plan: &mut Plan,
    input: impl Into<StageInput<(u32, u32), f64>>,
    reduce_tasks: usize,
    name: &str,
) -> StageHandle<(u32, u32), f64> {
    plan.add(name, input, reduce_tasks, |_| DedupMapper, |_| DedupReducer)
}

/// Collect a pair dataset into [`SimilarPair`]s sorted by id pair.
pub fn collect_pairs(unique: Dataset<(u32, u32), f64>) -> Vec<SimilarPair> {
    let mut pairs: Vec<SimilarPair> = unique
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|p| p.ids());
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_mapreduce::PlanRunner;

    #[test]
    fn removes_duplicates_and_sorts() {
        let data = Dataset::from_records(
            vec![
                ((3u32, 5u32), 0.9),
                ((1, 2), 0.8),
                ((3, 5), 0.9),
                ((3, 5), 0.9),
            ],
            2,
        );
        let mut plan = Plan::new("dedup-test").with_workers(2);
        let unique = add_dedup_stage(&mut plan, data, 2, "dedup-test");
        let mut outcome = PlanRunner::pipelined().run(plan);
        let pairs = collect_pairs(outcome.take_output(unique));
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].ids(), (1, 2));
        assert_eq!(pairs[1].ids(), (3, 5));
        let metrics = outcome.metrics.job("dedup-test").unwrap();
        assert_eq!(metrics.map_input_records(), 4);
        assert_eq!(metrics.reduce_output_records(), 2);
    }
}
