//! Result deduplication job.
//!
//! Signature-based joins (RIDPairsPPJoin, MassJoin) discover the same pair
//! in every reduce group that holds one of its shared signatures, so a
//! final MapReduce job collapses duplicates — exactly the paper's account
//! of why those pipelines carry an extra job that FS-Join does not need.

use crate::BaselineConfig;
use ssj_mapreduce::{
    Dataset, Emitter, GroupValues, JobBuilder, JobMetrics, Mapper, StreamingReducer,
};
use ssj_similarity::SimilarPair;

/// Identity mapper over `((a, b), sim)`.
struct DedupMapper;

impl Mapper for DedupMapper {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn map(&mut self, pair: (u32, u32), sim: f64, out: &mut Emitter<(u32, u32), f64>) {
        out.emit(pair, sim);
    }
}

/// Keeps one score per pair. Streams: only the head of each group is
/// read, duplicates are skipped by the engine without buffering.
struct DedupReducer;

impl StreamingReducer for DedupReducer {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        sims: &mut GroupValues<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        // All duplicates carry the same exact score; keep the first.
        out.emit(*pair, *sims.next().expect("group has at least one value"));
    }
}

/// Run the dedup job and collect sorted pairs.
pub fn dedup_job(
    results: &Dataset<(u32, u32), f64>,
    cfg: &BaselineConfig,
    name: &str,
) -> (Vec<SimilarPair>, JobMetrics) {
    let (unique, metrics) = JobBuilder::new(name)
        .reduce_tasks(cfg.reduce_tasks)
        .workers(cfg.workers)
        .run(results, |_| DedupMapper, |_| DedupReducer);
    let mut pairs: Vec<SimilarPair> = unique
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|p| p.ids());
    (pairs, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_duplicates_and_sorts() {
        let data = Dataset::from_records(
            vec![
                ((3u32, 5u32), 0.9),
                ((1, 2), 0.8),
                ((3, 5), 0.9),
                ((3, 5), 0.9),
            ],
            2,
        );
        let (pairs, metrics) = dedup_job(&data, &BaselineConfig::default(), "dedup-test");
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].ids(), (1, 2));
        assert_eq!(pairs[1].ids(), (3, 5));
        assert_eq!(metrics.map_input_records(), 4);
        assert_eq!(metrics.reduce_output_records(), 2);
    }
}
