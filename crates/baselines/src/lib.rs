//! Distributed baselines from the FS-Join paper (§II-C, §VI-A), all running
//! on the same [`ssj_mapreduce`] engine and producing the same result type
//! so end-to-end comparisons are apples-to-apples:
//!
//! * [`ridpairs`] — **RIDPairsPPJoin** (Vernica, Carey, Li — SIGMOD'10):
//!   prefix tokens as signatures, whole records shuffled per signature
//!   token, PPJoin inside each reduce group, then a dedup job;
//! * [`vsmart`] — **V-Smart-Join** (Metwally, Faloutsos — VLDB'12),
//!   Online-Aggregation variant: a full inverted index is materialized in
//!   the shuffle and every posting-list pair is enumerated — no filtering,
//!   faithful to the intermediate-result blow-up the paper reports;
//! * [`massjoin`] — **MassJoin** (Deng et al. — ICDE'14) adapted to set
//!   similarity on globally-ordered token sequences, with both the `Merge`
//!   (full records ride the shuffle) and `Merge+Light` (rids only, records
//!   re-attached from a distributed cache) verification variants.
//!
//! Every baseline is tested for exact agreement with the brute-force
//! oracle; they are real competitors, not strawmen.

pub mod dedup;
pub mod massjoin;
pub mod ridpairs;
pub mod vsmart;

use ssj_mapreduce::{ChainMetrics, PlanMode};
use ssj_similarity::SimilarPair;

/// Result of a baseline run: exact pairs plus full engine metrics.
#[derive(Debug, Clone)]
pub struct JoinRunResult {
    /// Similar pairs with exact scores, sorted by id pair.
    pub pairs: Vec<SimilarPair>,
    /// Metrics of every MapReduce job in the pipeline, in order.
    pub chain: ChainMetrics,
    /// High-water mark of live intermediate bytes held between the
    /// pipeline's stages (`PlanOutcome::peak_live_bytes`).
    pub peak_live_bytes: usize,
}

impl JoinRunResult {
    /// Total simulated time on a modelled cluster.
    pub fn simulated_secs(&self, cluster: &ssj_mapreduce::ClusterModel) -> f64 {
        cluster.simulate_chain(&self.chain).total_secs()
    }
}

/// Common tuning knobs shared by the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Map tasks per job.
    pub map_tasks: usize,
    /// Reduce tasks per job.
    pub reduce_tasks: usize,
    /// Host worker threads.
    pub workers: usize,
    /// Safety budget on intermediate *bytes* for explosion-prone
    /// algorithms (V-Smart-Join pair enumeration, MassJoin signatures) —
    /// the stand-in for a cluster's aggregate shuffle capacity. Exceeding
    /// it aborts the run with [`BudgetExceeded`], the analogue of the
    /// paper's "cannot run completely on the large datasets".
    pub intermediate_budget: u64,
    /// How the execution plan sequences each baseline's jobs (default
    /// [`PlanMode::Pipelined`]). Affects wall-clock and peak intermediate
    /// memory only — results and logical metrics are mode-invariant.
    pub plan_mode: PlanMode,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            map_tasks: 8,
            reduce_tasks: 12,
            workers: ssj_mapreduce::executor::default_workers(),
            intermediate_budget: 1_200_000_000,
            plan_mode: PlanMode::default(),
        }
    }
}

impl BaselineConfig {
    /// Override the intermediate-record budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.intermediate_budget = budget;
        self
    }

    /// Override task counts.
    pub fn with_tasks(mut self, map: usize, reduce: usize) -> Self {
        self.map_tasks = map;
        self.reduce_tasks = reduce;
        self
    }

    /// Override worker threads.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Set the plan sequencing mode (pipelined vs stage-barriered).
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }
}

/// An explosion-prone baseline exceeded its intermediate-byte budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Which algorithm hit the budget.
    pub algorithm: &'static str,
    /// Estimated intermediate bytes required.
    pub estimated: u64,
    /// The configured budget in bytes.
    pub budget: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} would materialize ~{} intermediate bytes (budget {})",
            self.algorithm, self.estimated, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}
