//! Synthetic corpus generators.
//!
//! The paper evaluates on Enron Email, PubMed abstracts, and Wikipedia
//! abstracts (Table III). We cannot ship those corpora, so we generate
//! synthetic analogues that control the three properties the algorithms are
//! sensitive to (see DESIGN.md):
//!
//! 1. **Token-frequency skew** — tokens are drawn from a Zipfian
//!    distribution (natural-language token frequencies are Zipf-like),
//!    which drives the load-imbalance phenomena of token-keyed shuffles;
//! 2. **Record-length distribution** — lognormal lengths with per-profile
//!    parameters (Email: few, long records; PubMed/Wiki: many short ones);
//! 3. **Near-duplicate density** — a fraction of records are perturbed
//!    copies of earlier records, so joins at θ ∈ [0.7, 0.95] have
//!    non-trivial result sets.
//!
//! All generation is deterministic given the seed.

use crate::corpus::RawCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipfian sampler over `0..vocab` with exponent `s`
/// (P(k) ∝ 1/(k+1)^s), via inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute the CDF for a vocabulary of `vocab` tokens.
    ///
    /// # Panics
    /// Panics if `vocab == 0` or `s < 0`.
    pub fn new(vocab: usize, s: f64) -> Self {
        assert!(vocab > 0, "vocabulary must be non-empty");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for k in 0..vocab {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Sample one token id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.cdf.len()
    }
}

/// Sample from a lognormal with the given *mean* and log-space sigma,
/// via Box–Muller (implemented locally; `rand_distr` is not on the
/// approved dependency list).
fn lognormal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) => mu from mean.
    let mu = mean.ln() - sigma * sigma / 2.0;
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Dataset profiles modelled on the paper's Table III (scaled down for a
/// single machine; relative shapes preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusProfile {
    /// Enron-Email analogue: few records, long and highly variable lengths.
    EmailLike,
    /// PubMed-abstract analogue: many records, short, low length variance.
    PubMedLike,
    /// Wikipedia-abstract analogue: many records, short, higher variance.
    WikiLike,
}

impl CorpusProfile {
    /// Default generator configuration for this profile at its reference
    /// scale ("10X" in the scaling experiments).
    pub fn config(self) -> GeneratorConfig {
        match self {
            CorpusProfile::EmailLike => GeneratorConfig {
                num_records: 1_500,
                vocab_size: 30_000,
                zipf_exponent: 1.05,
                mean_len: 280.0,
                sigma_len: 0.9,
                min_len: 30,
                max_len: 1_500,
                near_dup_fraction: 0.12,
                near_dup_max_churn: 0.25,
                seed: 0xE5A1,
            },
            CorpusProfile::PubMedLike => GeneratorConfig {
                num_records: 12_000,
                vocab_size: 60_000,
                zipf_exponent: 1.0,
                mean_len: 80.0,
                sigma_len: 0.4,
                min_len: 5,
                max_len: 320,
                near_dup_fraction: 0.10,
                near_dup_max_churn: 0.25,
                seed: 0x9B3D,
            },
            CorpusProfile::WikiLike => GeneratorConfig {
                num_records: 10_000,
                vocab_size: 70_000,
                zipf_exponent: 1.08,
                mean_len: 56.0,
                sigma_len: 0.65,
                min_len: 3,
                max_len: 400,
                near_dup_fraction: 0.10,
                near_dup_max_churn: 0.25,
                seed: 0x111C,
            },
        }
    }

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CorpusProfile::EmailLike => "Email",
            CorpusProfile::PubMedLike => "PubMed",
            CorpusProfile::WikiLike => "Wiki",
        }
    }

    /// All three profiles, in the paper's reporting order.
    pub fn all() -> [CorpusProfile; 3] {
        [
            CorpusProfile::EmailLike,
            CorpusProfile::PubMedLike,
            CorpusProfile::WikiLike,
        ]
    }
}

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of records to generate.
    pub num_records: usize,
    /// Vocabulary size (token domain |U|).
    pub vocab_size: usize,
    /// Zipf exponent of token frequencies.
    pub zipf_exponent: f64,
    /// Mean record length (tokens).
    pub mean_len: f64,
    /// Log-space standard deviation of record length.
    pub sigma_len: f64,
    /// Minimum record length.
    pub min_len: usize,
    /// Maximum record length.
    pub max_len: usize,
    /// Fraction of records generated as perturbed copies of earlier records.
    pub near_dup_fraction: f64,
    /// Maximum fraction of a copied record's tokens that are deleted or
    /// replaced (bounds how far a near-duplicate drifts: churn `c` yields
    /// Jaccard ≳ (1−c)/(1+c)).
    pub near_dup_max_churn: f64,
    /// RNG seed; generation is deterministic given the config.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Override the record count, keeping everything else.
    pub fn with_records(mut self, n: usize) -> Self {
        self.num_records = n;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the corpus.
    ///
    /// # Panics
    /// Panics on degenerate configurations (empty vocabulary, zero
    /// `max_len`, fractions outside `[0,1]`).
    pub fn generate(&self) -> RawCorpus {
        assert!(self.vocab_size > 0 && self.max_len > 0);
        assert!((0.0..=1.0).contains(&self.near_dup_fraction));
        assert!((0.0..=1.0).contains(&self.near_dup_max_churn));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.vocab_size, self.zipf_exponent);
        let mut docs: Vec<Vec<u64>> = Vec::with_capacity(self.num_records);

        for _ in 0..self.num_records {
            let make_dup = !docs.is_empty() && rng.gen::<f64>() < self.near_dup_fraction;
            let doc = if make_dup {
                let base = &docs[rng.gen_range(0..docs.len())];
                self.perturb(base.clone(), &zipf, &mut rng)
            } else {
                self.fresh_doc(&zipf, &mut rng)
            };
            docs.push(doc);
        }
        RawCorpus { docs, vocab: None }
    }

    fn target_len<R: Rng>(&self, rng: &mut R) -> usize {
        let l = lognormal(rng, self.mean_len, self.sigma_len).round() as i64;
        (l.max(self.min_len as i64) as usize).min(self.max_len)
    }

    fn fresh_doc<R: Rng>(&self, zipf: &ZipfSampler, rng: &mut R) -> Vec<u64> {
        let target = self.target_len(rng);
        let mut seen = ssj_common::FxHashSet::default();
        let mut doc = Vec::with_capacity(target);
        // Token sets: sample until `target` distinct tokens, with an attempt
        // cap so pathological configs (target close to vocab) terminate.
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(30) + 100;
        while doc.len() < target && attempts < max_attempts {
            attempts += 1;
            let t = zipf.sample(rng);
            if seen.insert(t) {
                doc.push(t);
            }
        }
        doc
    }

    /// Delete and replace a random fraction (≤ `near_dup_max_churn`) of a
    /// base document's tokens.
    fn perturb<R: Rng>(&self, mut doc: Vec<u64>, zipf: &ZipfSampler, rng: &mut R) -> Vec<u64> {
        if doc.is_empty() {
            return doc;
        }
        let churn = rng.gen::<f64>() * self.near_dup_max_churn;
        let k = ((doc.len() as f64 * churn).round() as usize).min(doc.len().saturating_sub(1));
        // Delete k random tokens.
        for _ in 0..k {
            let i = rng.gen_range(0..doc.len());
            doc.swap_remove(i);
        }
        // Insert up to k fresh tokens (replacement, keeping length similar).
        let inserts = rng.gen_range(0..=k);
        for _ in 0..inserts {
            doc.push(zipf.sample(rng));
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let t = z.sample(&mut rng) as usize;
            assert!(t < 1000);
            counts[t] += 1;
        }
        // Token 0 should be far more frequent than token 500.
        assert!(counts[0] > 10 * counts[500].max(1));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "uniform-ish expected");
        }
    }

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            num_records: 300,
            vocab_size: 2_000,
            zipf_exponent: 1.0,
            mean_len: 30.0,
            sigma_len: 0.5,
            min_len: 3,
            max_len: 200,
            near_dup_fraction: 0.2,
            near_dup_max_churn: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.docs, b.docs);
        let c = small_config().with_seed(43).generate();
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn lengths_respect_bounds() {
        let corpus = small_config().generate();
        assert_eq!(corpus.len(), 300);
        let encoded = encode(&corpus);
        let stats = encoded.stats();
        assert!(stats.max_len <= 200);
        assert!(stats.avg_len > 5.0 && stats.avg_len < 100.0);
    }

    #[test]
    fn near_duplicates_produce_high_jaccard_pairs() {
        let corpus = small_config().generate();
        let encoded = encode(&corpus);
        // Count pairs with Jaccard >= 0.7 by brute force.
        let mut hits = 0usize;
        for i in 0..encoded.len() {
            for j in (i + 1)..encoded.len() {
                let a: std::collections::BTreeSet<u32> =
                    encoded.tokens(i as u32).iter().copied().collect();
                let b: std::collections::BTreeSet<u32> =
                    encoded.tokens(j as u32).iter().copied().collect();
                let inter = a.intersection(&b).count();
                let uni = a.len() + b.len() - inter;
                if uni > 0 && inter as f64 / uni as f64 >= 0.7 {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 10, "expected planted near-duplicates, got {hits}");
    }

    #[test]
    fn profiles_have_distinct_shapes() {
        let email = CorpusProfile::EmailLike.config();
        let wiki = CorpusProfile::WikiLike.config();
        assert!(email.mean_len > 3.0 * wiki.mean_len);
        assert!(wiki.num_records > 3 * email.num_records);
        assert_eq!(CorpusProfile::EmailLike.name(), "Email");
        assert_eq!(CorpusProfile::all().len(), 3);
    }

    #[test]
    fn profile_generation_smoke() {
        // Tiny versions of each profile must generate and encode cleanly.
        for p in CorpusProfile::all() {
            let corpus = p.config().with_records(50).generate();
            let enc = encode(&corpus);
            assert_eq!(enc.len(), 50);
            assert!(enc.universe() > 0);
        }
    }
}
