//! Raw (pre-ordering) corpora.
//!
//! A [`RawCorpus`] holds documents as lists of *raw token ids* — interned
//! surface forms for text corpora, or synthetic ids from the generators in
//! [`crate::gen`]. Raw ids carry no order semantics; the ordering phase
//! ([`crate::ordering`]) replaces them with global-order ranks.

use crate::tokenize::Tokenizer;
use ssj_common::FxHashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A corpus of documents over raw token ids.
#[derive(Debug, Clone, Default)]
pub struct RawCorpus {
    /// Documents; duplicates within a document are allowed (set semantics
    /// are applied by the encoder).
    pub docs: Vec<Vec<u64>>,
    /// Raw id → surface form, when the corpus came from text.
    pub vocab: Option<Vec<String>>,
}

impl RawCorpus {
    /// Tokenize and intern a slice of documents.
    pub fn from_texts<S: AsRef<str>>(texts: &[S], tokenizer: &Tokenizer) -> Self {
        let mut intern: FxHashMap<String, u64> = FxHashMap::default();
        let mut vocab: Vec<String> = Vec::new();
        let mut docs = Vec::with_capacity(texts.len());
        for text in texts {
            let tokens = tokenizer.tokenize(text.as_ref());
            let mut doc = Vec::with_capacity(tokens.len());
            for t in tokens {
                let id = *intern.entry(t.clone()).or_insert_with(|| {
                    vocab.push(t);
                    (vocab.len() - 1) as u64
                });
                doc.push(id);
            }
            docs.push(doc);
        }
        RawCorpus {
            docs,
            vocab: Some(vocab),
        }
    }

    /// Load a one-record-per-line text file (the format the paper's corpora
    /// are distributed in after flattening). Empty lines become empty
    /// documents so line numbers stay aligned with record ids.
    pub fn from_lines_file(path: &Path, tokenizer: &Tokenizer) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let lines: Vec<String> = BufReader::new(file).lines().collect::<Result<_, _>>()?;
        Ok(Self::from_texts(&lines, tokenizer))
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_stable_ids() {
        let c = RawCorpus::from_texts(&["a b a", "b c"], &Tokenizer::Words);
        assert_eq!(c.docs.len(), 2);
        assert_eq!(c.docs[0], vec![0, 1, 0]);
        assert_eq!(c.docs[1], vec![1, 2]);
        assert_eq!(
            c.vocab.as_deref(),
            Some(&["a", "b", "c"].map(String::from)[..])
        );
    }

    #[test]
    fn empty_documents_preserved() {
        let c = RawCorpus::from_texts(&["", "x"], &Tokenizer::Words);
        assert_eq!(c.len(), 2);
        assert!(c.docs[0].is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ssj_text_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        std::fs::write(&path, "hello world\nhello rust\n").unwrap();
        let c = RawCorpus::from_lines_file(&path, &Tokenizer::Words).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.docs[0].len(), 2);
        assert_eq!(c.docs[1], vec![0, 2]);
        std::fs::remove_file(&path).ok();
    }
}
