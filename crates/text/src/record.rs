//! Encoded records and collections.

use ssj_common::ByteSize;

/// Identifier of a record within its collection.
pub type RecordId = u32;

/// A token id in global-order rank space: `0` is the globally rarest token.
pub type TokenId = u32;

/// A record: a *set* of tokens, stored as a strictly ascending vector of
/// global-order ranks. The ascending-rank invariant is what every
/// prefix-filter and merge-intersection in the workspace relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Record id, unique within its collection.
    pub id: RecordId,
    /// Strictly ascending token ranks.
    pub tokens: Vec<TokenId>,
}

impl Record {
    /// Build a record from an arbitrary token list: sorts and deduplicates.
    pub fn new(id: RecordId, mut tokens: Vec<TokenId>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        Record { id, tokens }
    }

    /// Build from tokens already strictly ascending (checked in debug).
    pub fn from_sorted(id: RecordId, tokens: Vec<TokenId>) -> Self {
        debug_assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "tokens must be strictly ascending"
        );
        Record { id, tokens }
    }

    /// Number of tokens (the paper's `|s|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the record has no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

impl ByteSize for Record {
    fn byte_size(&self) -> usize {
        4 + self.tokens.byte_size()
    }
}

/// An encoded collection: records in rank space plus the global-ordering
/// frequency table.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    /// Records, ids are dense `0..records.len()`.
    pub records: Vec<Record>,
    /// Frequency of each token, indexed by rank (ascending order ⇒
    /// `token_freqs` is non-decreasing).
    pub token_freqs: Vec<u64>,
    /// Optional rank → surface-form mapping for reporting (None for
    /// synthetic corpora).
    pub vocab: Option<Vec<String>>,
}

impl Collection {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct tokens (the token-domain size `|U|`).
    pub fn universe(&self) -> usize {
        self.token_freqs.len()
    }

    /// Total token occurrences (with set semantics: Σ|sᵢ|).
    pub fn total_tokens(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64).sum()
    }

    /// Dataset statistics, as reported in the paper's Table III.
    pub fn stats(&self) -> CorpusStats {
        let lens: Vec<usize> = self.records.iter().map(Record::len).collect();
        let min = lens.iter().copied().min().unwrap_or(0);
        let max = lens.iter().copied().max().unwrap_or(0);
        let avg = if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        };
        CorpusStats {
            records: self.records.len(),
            universe: self.universe(),
            min_len: min,
            max_len: max,
            avg_len: avg,
        }
    }

    /// Random sample of a fraction of records (the paper's 4X/6X/8X/10X
    /// scales are "extracted ... randomly"). Record ids are re-densified;
    /// the frequency table is kept (the ordering of the full corpus is a
    /// valid — if slightly stale — global ordering for any subset).
    pub fn sample(&self, fraction: f64, seed: u64) -> Collection {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        // Deterministic hash-based sampling: keep record i iff
        // hash(seed, i) < fraction * 2^64. Avoids an RNG dependency here.
        let threshold = (fraction * u64::MAX as f64) as u64;
        let mut records = Vec::with_capacity((self.len() as f64 * fraction) as usize + 1);
        for r in &self.records {
            let h = ssj_common::hash::fx_hash_one(&(seed, r.id));
            if h <= threshold {
                records.push(Record {
                    id: records.len() as RecordId,
                    tokens: r.tokens.clone(),
                });
            }
        }
        Collection {
            records,
            token_freqs: self.token_freqs.clone(),
            vocab: self.vocab.clone(),
        }
    }

    /// All record lengths (for length histograms / horizontal pivots).
    pub fn lengths(&self) -> Vec<usize> {
        self.records.iter().map(Record::len).collect()
    }
}

/// Summary statistics of a collection (paper Table III columns).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of records.
    pub records: usize,
    /// Distinct tokens.
    pub universe: usize,
    /// Minimum record length.
    pub min_len: usize,
    /// Maximum record length.
    pub max_len: usize,
    /// Mean record length.
    pub avg_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let r = Record::new(0, vec![5, 1, 3, 1, 5]);
        assert_eq!(r.tokens, vec![1, 3, 5]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn byte_size_counts_id_and_tokens() {
        let r = Record::new(0, vec![1, 2]);
        assert_eq!(r.byte_size(), 4 + 4 + 8);
    }

    fn collection() -> Collection {
        Collection {
            records: (0..100u32)
                .map(|i| Record::new(i, (0..=i % 10).collect()))
                .collect(),
            token_freqs: vec![10; 10],
            vocab: None,
        }
    }

    #[test]
    fn stats_reports_min_max_avg() {
        let s = collection().stats();
        assert_eq!(s.records, 100);
        assert_eq!(s.universe, 10);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 10);
        assert!((s.avg_len - 5.5).abs() < 1e-12);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_fractional() {
        let c = collection();
        let a = c.sample(0.5, 42);
        let b = c.sample(0.5, 42);
        assert_eq!(a.records, b.records);
        assert!(a.len() > 20 && a.len() < 80, "got {}", a.len());
        // Ids re-densified.
        for (i, r) in a.records.iter().enumerate() {
            assert_eq!(r.id as usize, i);
        }
    }

    #[test]
    fn sample_extremes() {
        let c = collection();
        assert_eq!(c.sample(0.0, 1).len(), 0);
        assert_eq!(c.sample(1.0, 1).len(), 100);
    }

    #[test]
    fn empty_collection_stats() {
        let c = Collection::default();
        let s = c.stats();
        assert_eq!(s.records, 0);
        assert_eq!(s.avg_len, 0.0);
    }
}
