//! Encoded records and collections.
//!
//! Since the columnar refactor, a [`Collection`] no longer owns one heap
//! vector per record: all tokens live in a single [`TokenPool`] arena and
//! records are addressed through [`RecordView`]s / spans (see
//! [`crate::pool`] and DESIGN.md "Data layout"). The owned [`Record`] type
//! remains the ingestion and interchange representation — baselines that
//! *deliberately* shuffle whole records (RIDPairsPPJoin, MassJoin) still
//! ship `Record`s, because their duplication is the phenomenon under
//! measurement.

use crate::pool::{TokenPool, TokenSpan};
use ssj_common::ByteSize;
use std::sync::Arc;

/// Identifier of a record within its collection.
pub type RecordId = u32;

/// A token id in global-order rank space: `0` is the globally rarest token.
pub type TokenId = u32;

/// Error for token lists that violate the strictly-ascending invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalformedRecord {
    /// Id of the offending record.
    pub id: RecordId,
    /// Index of the first token that is not greater than its predecessor.
    pub position: usize,
}

impl std::fmt::Display for MalformedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record {}: tokens must be strictly ascending, violated at index {}",
            self.id, self.position
        )
    }
}

impl std::error::Error for MalformedRecord {}

/// A record: a *set* of tokens, stored as a strictly ascending vector of
/// global-order ranks. The ascending-rank invariant is what every
/// prefix-filter and merge-intersection in the workspace relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Record id, unique within its collection.
    pub id: RecordId,
    /// Strictly ascending token ranks.
    pub tokens: Vec<TokenId>,
}

impl Record {
    /// Build a record from an arbitrary token list: sorts and deduplicates.
    pub fn new(id: RecordId, mut tokens: Vec<TokenId>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        Record { id, tokens }
    }

    /// Build from tokens that must already be strictly ascending; returns
    /// [`MalformedRecord`] (with the first offending index) otherwise.
    ///
    /// This is the checked entry point for *external* ingestion — data
    /// whose sortedness is claimed rather than established in-process. A
    /// record with out-of-order tokens silently corrupts every prefix
    /// filter and merge intersection downstream, so external paths must
    /// fail loudly here, in release builds too.
    pub fn try_from_sorted(id: RecordId, tokens: Vec<TokenId>) -> Result<Self, MalformedRecord> {
        match check_ascending(&tokens) {
            Some(position) => Err(MalformedRecord { id, position }),
            None => Ok(Record { id, tokens }),
        }
    }

    /// Build from tokens already strictly ascending (checked in debug
    /// builds only — for *trusted* in-process data; external input goes
    /// through [`Record::try_from_sorted`]).
    pub fn from_sorted(id: RecordId, tokens: Vec<TokenId>) -> Self {
        debug_assert!(
            check_ascending(&tokens).is_none(),
            "tokens must be strictly ascending"
        );
        Record { id, tokens }
    }

    /// Number of tokens (the paper's `|s|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the record has no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Borrowed view of this record.
    #[inline]
    pub fn view(&self) -> RecordView<'_> {
        RecordView {
            id: self.id,
            tokens: &self.tokens,
        }
    }
}

/// First index violating strict ascent, if any.
pub(crate) fn check_ascending(tokens: &[TokenId]) -> Option<usize> {
    tokens.windows(2).position(|w| w[0] >= w[1]).map(|i| i + 1)
}

impl ByteSize for Record {
    fn byte_size(&self) -> usize {
        4 + self.tokens.byte_size()
    }
}

/// A borrowed record: id plus a token slice (usually resolved from a
/// [`TokenPool`]). `Copy` — the currency of the in-memory kernels since
/// the columnar refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// Record id.
    pub id: RecordId,
    /// Strictly ascending token ranks.
    pub tokens: &'a [TokenId],
}

impl RecordView<'_> {
    /// Number of tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the record has no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Materialize an owned [`Record`] (copies the tokens).
    pub fn to_record(&self) -> Record {
        Record {
            id: self.id,
            tokens: self.tokens.to_vec(),
        }
    }
}

/// Anything that exposes a record as `(id, sorted token slice)` — owned
/// [`Record`]s and borrowed [`RecordView`]s alike. The in-memory joins
/// (naive, AllPairs, PPJoin…) are generic over this, so pooled collections
/// join without materializing owned vectors while shuffled `Record` groups
/// keep working unchanged.
pub trait TokenSet {
    /// Record id.
    fn id(&self) -> RecordId;
    /// Strictly ascending token ranks.
    fn tokens(&self) -> &[TokenId];

    /// Number of tokens.
    #[inline]
    fn size(&self) -> usize {
        self.tokens().len()
    }
}

impl TokenSet for Record {
    #[inline]
    fn id(&self) -> RecordId {
        self.id
    }
    #[inline]
    fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }
}

impl TokenSet for RecordView<'_> {
    #[inline]
    fn id(&self) -> RecordId {
        self.id
    }
    #[inline]
    fn tokens(&self) -> &[TokenId] {
        self.tokens
    }
}

impl<T: TokenSet> TokenSet for &T {
    #[inline]
    fn id(&self) -> RecordId {
        (*self).id()
    }
    #[inline]
    fn tokens(&self) -> &[TokenId] {
        (*self).tokens()
    }
}

/// An encoded collection: columnar token storage plus the global-ordering
/// frequency table. Record ids are dense `0..len()` and double as pool
/// indices; the pool is behind an `Arc` so drivers can share it with every
/// map/reduce task as read-only side data (Hadoop distributed-cache style)
/// without copying a single token.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    /// All records' tokens, in id order.
    pool: Arc<TokenPool>,
    /// Frequency of each token, indexed by rank (ascending order ⇒
    /// `token_freqs` is non-decreasing).
    pub token_freqs: Vec<u64>,
    /// Optional rank → surface-form mapping for reporting (None for
    /// synthetic corpora).
    pub vocab: Option<Vec<String>>,
}

impl Collection {
    /// Build from owned records. Ids must be dense `0..n` and tokens
    /// strictly ascending — every ingestion path funnels through this
    /// check, so malformed input fails with a [`MalformedRecord`] message
    /// instead of corrupting filters downstream (release builds included).
    ///
    /// # Panics
    /// Panics on non-dense ids or non-ascending tokens.
    pub fn new(records: Vec<Record>, token_freqs: Vec<u64>, vocab: Option<Vec<String>>) -> Self {
        let total: usize = records.iter().map(Record::len).sum();
        let mut pool = TokenPool::with_capacity(records.len(), total);
        for (i, r) in records.into_iter().enumerate() {
            assert_eq!(r.id as usize, i, "collection record ids must be dense 0..n");
            let checked = Record::try_from_sorted(r.id, r.tokens)
                .unwrap_or_else(|e| panic!("collection ingest: {e}"));
            pool.push(&checked.tokens);
        }
        Collection {
            pool: Arc::new(pool),
            token_freqs,
            vocab,
        }
    }

    /// Build directly from a pool (records already columnar).
    pub fn from_pool(
        pool: Arc<TokenPool>,
        token_freqs: Vec<u64>,
        vocab: Option<Vec<String>>,
    ) -> Self {
        Collection {
            pool,
            token_freqs,
            vocab,
        }
    }

    /// The columnar token storage.
    #[inline]
    pub fn pool(&self) -> &TokenPool {
        &self.pool
    }

    /// Share the pool (cheap `Arc` clone) — the handle drivers register as
    /// job side data.
    #[inline]
    pub fn share_pool(&self) -> Arc<TokenPool> {
        Arc::clone(&self.pool)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Tokens of record `rid`.
    #[inline]
    pub fn tokens(&self, rid: RecordId) -> &[TokenId] {
        self.pool.tokens_of(rid)
    }

    /// Borrowed view of record `rid`.
    #[inline]
    pub fn view(&self, rid: RecordId) -> RecordView<'_> {
        RecordView {
            id: rid,
            tokens: self.pool.tokens_of(rid),
        }
    }

    /// Span of record `rid` in the pool.
    #[inline]
    pub fn span(&self, rid: RecordId) -> TokenSpan {
        self.pool.span_of(rid)
    }

    /// Iterate over all records as views, in id order.
    pub fn iter(&self) -> impl Iterator<Item = RecordView<'_>> {
        (0..self.len() as RecordId).map(move |rid| self.view(rid))
    }

    /// All records as views (cheap handles; no token copies).
    pub fn views(&self) -> Vec<RecordView<'_>> {
        self.iter().collect()
    }

    /// Materialize record `rid` as an owned [`Record`] (copies tokens).
    pub fn record(&self, rid: RecordId) -> Record {
        self.view(rid).to_record()
    }

    /// Materialize all records as owned [`Record`]s — for consumers whose
    /// semantics *require* owned per-record vectors (record-shuffling
    /// baselines, benchmarks of the owned layout).
    pub fn to_records(&self) -> Vec<Record> {
        self.iter().map(|v| v.to_record()).collect()
    }

    /// Number of distinct tokens (the token-domain size `|U|`).
    pub fn universe(&self) -> usize {
        self.token_freqs.len()
    }

    /// Total token occurrences (with set semantics: Σ|sᵢ|). O(1) on the
    /// columnar layout.
    pub fn total_tokens(&self) -> u64 {
        self.pool.total_tokens() as u64
    }

    /// Dataset statistics, as reported in the paper's Table III.
    pub fn stats(&self) -> CorpusStats {
        let lens: Vec<usize> = self.lengths();
        let min = lens.iter().copied().min().unwrap_or(0);
        let max = lens.iter().copied().max().unwrap_or(0);
        let avg = if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        };
        CorpusStats {
            records: self.len(),
            universe: self.universe(),
            min_len: min,
            max_len: max,
            avg_len: avg,
        }
    }

    /// Random sample of a fraction of records (the paper's 4X/6X/8X/10X
    /// scales are "extracted ... randomly"). Record ids are re-densified;
    /// the frequency table is kept (the ordering of the full corpus is a
    /// valid — if slightly stale — global ordering for any subset).
    pub fn sample(&self, fraction: f64, seed: u64) -> Collection {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        // Deterministic hash-based sampling: keep record i iff
        // hash(seed, i) < fraction * 2^64. Avoids an RNG dependency here.
        let threshold = (fraction * u64::MAX as f64) as u64;
        let mut pool = TokenPool::new();
        for v in self.iter() {
            let h = ssj_common::hash::fx_hash_one(&(seed, v.id));
            if h <= threshold {
                pool.push(v.tokens);
            }
        }
        Collection {
            pool: Arc::new(pool),
            token_freqs: self.token_freqs.clone(),
            vocab: self.vocab.clone(),
        }
    }

    /// All record lengths (for length histograms / horizontal pivots).
    pub fn lengths(&self) -> Vec<usize> {
        self.pool.iter().map(<[TokenId]>::len).collect()
    }
}

/// Summary statistics of a collection (paper Table III columns).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of records.
    pub records: usize,
    /// Distinct tokens.
    pub universe: usize,
    /// Minimum record length.
    pub min_len: usize,
    /// Maximum record length.
    pub max_len: usize,
    /// Mean record length.
    pub avg_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let r = Record::new(0, vec![5, 1, 3, 1, 5]);
        assert_eq!(r.tokens, vec![1, 3, 5]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn byte_size_counts_id_and_tokens() {
        let r = Record::new(0, vec![1, 2]);
        assert_eq!(r.byte_size(), 4 + 4 + 8);
    }

    #[test]
    fn try_from_sorted_accepts_ascending() {
        let r = Record::try_from_sorted(3, vec![1, 5, 9]).unwrap();
        assert_eq!(r.tokens, vec![1, 5, 9]);
        assert!(Record::try_from_sorted(0, vec![]).is_ok());
        assert!(Record::try_from_sorted(0, vec![7]).is_ok());
    }

    #[test]
    fn try_from_sorted_rejects_disorder_and_duplicates() {
        let err = Record::try_from_sorted(7, vec![1, 3, 2]).unwrap_err();
        assert_eq!(err, MalformedRecord { id: 7, position: 2 });
        assert!(err.to_string().contains("record 7"));
        assert!(err.to_string().contains("index 2"));
        // Duplicates violate *strict* ascent (records are sets).
        let err = Record::try_from_sorted(1, vec![4, 4]).unwrap_err();
        assert_eq!(err.position, 1);
    }

    #[test]
    fn views_expose_ids_and_tokens() {
        let r = Record::new(2, vec![8, 3]);
        let v = r.view();
        assert_eq!(v.id, 2);
        assert_eq!(v.tokens, &[3, 8]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.to_record(), r);
        // TokenSet is implemented by both representations.
        fn first<T: TokenSet>(t: &T) -> Option<TokenId> {
            t.tokens().first().copied()
        }
        assert_eq!(first(&r), Some(3));
        assert_eq!(first(&v), Some(3));
    }

    fn collection() -> Collection {
        Collection::new(
            (0..100u32)
                .map(|i| Record::new(i, (0..=i % 10).collect()))
                .collect(),
            vec![10; 10],
            None,
        )
    }

    #[test]
    fn columnar_accessors_agree_with_records() {
        let c = collection();
        assert_eq!(c.len(), 100);
        assert_eq!(c.tokens(7), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(c.view(3).id, 3);
        assert_eq!(c.span(0).len(), 1);
        assert_eq!(c.record(5).tokens, c.tokens(5));
        assert_eq!(c.to_records().len(), 100);
        assert_eq!(c.total_tokens(), c.lengths().iter().sum::<usize>() as u64);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let _ = Collection::new(vec![Record::new(5, vec![1])], vec![], None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn malformed_ingest_rejected_in_release_too() {
        let bad = Record {
            id: 0,
            tokens: vec![3, 1],
        };
        let _ = Collection::new(vec![bad], vec![], None);
    }

    #[test]
    fn stats_reports_min_max_avg() {
        let s = collection().stats();
        assert_eq!(s.records, 100);
        assert_eq!(s.universe, 10);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 10);
        assert!((s.avg_len - 5.5).abs() < 1e-12);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_fractional() {
        let c = collection();
        let a = c.sample(0.5, 42);
        let b = c.sample(0.5, 42);
        assert_eq!(a.pool(), b.pool());
        assert!(a.len() > 20 && a.len() < 80, "got {}", a.len());
        // Ids re-densified.
        for (i, v) in a.iter().enumerate() {
            assert_eq!(v.id as usize, i);
        }
    }

    #[test]
    fn sample_extremes() {
        let c = collection();
        assert_eq!(c.sample(0.0, 1).len(), 0);
        assert_eq!(c.sample(1.0, 1).len(), 100);
    }

    #[test]
    fn empty_collection_stats() {
        let c = Collection::default();
        let s = c.stats();
        assert_eq!(s.records, 0);
        assert_eq!(s.avg_len, 0.0);
    }
}
