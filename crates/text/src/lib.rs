//! Text preprocessing for set-similarity joins.
//!
//! Turns raw documents into the representation every join algorithm in this
//! workspace consumes: a [`Collection`] of [`Record`]s whose tokens are
//! *global-order ranks* — after encoding, token id `r` means "the `r`-th
//! token in the ascending-frequency global ordering" (paper §III
//! "Ordering"), so:
//!
//! * comparing two token ids compares their global-order positions;
//! * a record's prefix (its rarest tokens) is simply its first elements;
//! * the token-frequency array is indexed by token id.
//!
//! The crate provides:
//!
//! * [`tokenize`] — word / character-n-gram / word-n-gram tokenizers;
//! * [`corpus`] — raw (pre-ordering) corpora and plain-text loading;
//! * [`ordering`] — the frequency-based global ordering, computed either
//!   locally or with a MapReduce job (as FS-Join's first phase does);
//! * [`encode`] — re-encoding raw corpora into [`Collection`]s;
//! * [`gen`] — synthetic corpus generators with Zipfian token frequencies,
//!   per-dataset length profiles (Email / PubMed / Wiki analogues, paper
//!   Table III) and planted near-duplicate clusters.

pub mod corpus;
pub mod encode;
pub mod gen;
pub mod ordering;
pub mod pool;
pub mod record;
pub mod tokenize;

pub use corpus::RawCorpus;
pub use encode::{encode, encode_mr, encode_with_kind};
pub use gen::{CorpusProfile, GeneratorConfig};
pub use ordering::{GlobalOrdering, OrderingKind};
pub use pool::{
    BitmapWidthError, PoolOverflow, PooledRecord, TokenPool, TokenSpan, DEFAULT_BITMAP_BITS,
};
pub use record::{
    Collection, CorpusStats, MalformedRecord, Record, RecordId, RecordView, TokenId, TokenSet,
};
pub use tokenize::Tokenizer;
