//! The frequency-based global ordering (paper §III "Ordering", Definition 3).
//!
//! Tokens are ordered by ascending frequency, ties broken by raw id, and the
//! position in that order becomes the token's rank. The paper computes the
//! ordering with one MapReduce job (citing RIDPairsPPJoin's ordering stage);
//! [`compute_ordering_mr`] does the same on our engine, and
//! [`compute_ordering_local`] is the single-machine reference both are
//! tested against.
//!
//! Frequency here is *document* frequency: records are token sets, so a
//! token counts once per record containing it.

use crate::corpus::RawCorpus;
use ssj_common::FxHashMap;
use ssj_mapreduce::{
    Dataset, Emitter, HashPartitioner, JobMetrics, Mapper, Plan, PlanRunner, Reducer, SumCombiner,
};

/// How to totally order the token domain (Definition 3). The paper fixes
/// ascending frequency (rare first) — the choice that makes prefixes
/// maximally selective; the alternatives exist for the ordering ablation
/// (`expt`'s extension experiments) and for related work that explores
/// other orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Ascending frequency, ties by raw id (the paper's choice).
    #[default]
    AscendingFrequency,
    /// Descending frequency — adversarial for prefix filtering: prefixes
    /// become the most common tokens.
    DescendingFrequency,
    /// Raw-id (≈ lexicographic for interned text) — frequency-oblivious.
    Lexicographic,
}

impl OrderingKind {
    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::AscendingFrequency => "freq-asc",
            OrderingKind::DescendingFrequency => "freq-desc",
            OrderingKind::Lexicographic => "lexicographic",
        }
    }

    /// All kinds, paper's default first.
    pub fn all() -> [OrderingKind; 3] {
        [
            OrderingKind::AscendingFrequency,
            OrderingKind::DescendingFrequency,
            OrderingKind::Lexicographic,
        ]
    }
}

/// The global ordering: a bijection raw id ↔ rank plus the rank-indexed
/// frequency table.
#[derive(Debug, Clone, Default)]
pub struct GlobalOrdering {
    /// raw id → rank.
    rank_of: FxHashMap<u64, u32>,
    /// rank → raw id (ascending frequency).
    raw_of: Vec<u64>,
    /// rank → frequency (non-decreasing for the default kind).
    freqs: Vec<u64>,
}

impl GlobalOrdering {
    /// Build from `(raw id, frequency)` pairs with the paper's ordering.
    pub fn from_freqs(pairs: Vec<(u64, u64)>) -> Self {
        Self::from_freqs_with(pairs, OrderingKind::AscendingFrequency)
    }

    /// Build from `(raw id, frequency)` pairs with an explicit ordering.
    pub fn from_freqs_with(pairs: Vec<(u64, u64)>, kind: OrderingKind) -> Self {
        let mut pairs = pairs;
        match kind {
            // Ties by raw id for determinism in every kind.
            OrderingKind::AscendingFrequency => {
                pairs.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            }
            OrderingKind::DescendingFrequency => {
                pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)))
            }
            OrderingKind::Lexicographic => pairs.sort_unstable_by_key(|a| a.0),
        }
        let mut rank_of = FxHashMap::default();
        rank_of.reserve(pairs.len());
        let mut raw_of = Vec::with_capacity(pairs.len());
        let mut freqs = Vec::with_capacity(pairs.len());
        for (rank, (raw, f)) in pairs.into_iter().enumerate() {
            let prev = rank_of.insert(raw, rank as u32);
            assert!(prev.is_none(), "duplicate raw token id {raw}");
            raw_of.push(raw);
            freqs.push(f);
        }
        GlobalOrdering {
            rank_of,
            raw_of,
            freqs,
        }
    }

    /// Rank of a raw token id, if the token was seen.
    #[inline]
    pub fn rank(&self, raw: u64) -> Option<u32> {
        self.rank_of.get(&raw).copied()
    }

    /// Raw id at a rank.
    #[inline]
    pub fn raw(&self, rank: u32) -> u64 {
        self.raw_of[rank as usize]
    }

    /// Frequency of the token at a rank.
    #[inline]
    pub fn freq(&self, rank: u32) -> u64 {
        self.freqs[rank as usize]
    }

    /// Rank-indexed frequency table (ascending).
    pub fn freqs(&self) -> &[u64] {
        &self.freqs
    }

    /// Number of distinct tokens.
    pub fn universe(&self) -> usize {
        self.raw_of.len()
    }
}

/// Count document frequencies locally and build the ordering.
pub fn compute_ordering_local(corpus: &RawCorpus) -> GlobalOrdering {
    let mut freqs: FxHashMap<u64, u64> = FxHashMap::default();
    let mut seen: Vec<u64> = Vec::new();
    for doc in &corpus.docs {
        seen.clear();
        seen.extend_from_slice(doc);
        seen.sort_unstable();
        seen.dedup();
        for &t in &seen {
            *freqs.entry(t).or_insert(0) += 1;
        }
    }
    GlobalOrdering::from_freqs(freqs.into_iter().collect())
}

/// Mapper of the ordering job: emits `(raw token, 1)` once per distinct
/// token of each document (set semantics).
struct FreqMapper;

impl Mapper for FreqMapper {
    type InKey = u32;
    type InValue = Vec<u64>;
    type OutKey = u64;
    type OutValue = u64;

    fn map(&mut self, _id: u32, mut doc: Vec<u64>, out: &mut Emitter<u64, u64>) {
        doc.sort_unstable();
        doc.dedup();
        for t in doc {
            out.emit(t, 1);
        }
    }
}

/// Reducer of the ordering job: sums per-token counts.
struct FreqReducer;

impl Reducer for FreqReducer {
    type InKey = u64;
    type InValue = u64;
    type OutKey = u64;
    type OutValue = u64;

    fn reduce(&mut self, token: &u64, counts: Vec<u64>, out: &mut Emitter<u64, u64>) {
        out.emit(*token, counts.into_iter().sum());
    }
}

/// Compute the ordering with one MapReduce job (map: token→1 with a sum
/// combiner; reduce: sum), then sort the frequency table on the driver —
/// exactly the paper's ordering phase.
pub fn compute_ordering_mr(
    corpus: &RawCorpus,
    map_tasks: usize,
    reduce_tasks: usize,
) -> (GlobalOrdering, JobMetrics) {
    let input: Dataset<u32, Vec<u64>> = Dataset::from_records(
        corpus
            .docs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u32, d.clone()))
            .collect(),
        map_tasks.max(1),
    );
    let mut plan = Plan::new("ordering");
    let freqs = plan.add_full(
        "ordering",
        input,
        reduce_tasks.max(1),
        |_| FreqMapper,
        |_| FreqReducer,
        HashPartitioner,
        Some(SumCombiner),
    );
    let mut outcome = PlanRunner::pipelined().run(plan);
    let freq_data = outcome.take_output(freqs);
    let metrics = outcome.metrics.jobs.remove(0);
    let ordering = GlobalOrdering::from_freqs(freq_data.into_records().collect());
    (ordering, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn corpus() -> RawCorpus {
        RawCorpus::from_texts(
            &["common rare", "common mid", "common mid x", "common"],
            &Tokenizer::Words,
        )
    }

    #[test]
    fn local_ordering_sorts_by_ascending_frequency() {
        let o = compute_ordering_local(&corpus());
        assert_eq!(o.universe(), 4);
        // freqs by rank non-decreasing
        let f = o.freqs();
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
        // "common" (freq 4) must be the last rank.
        let common_raw = 0u64; // first interned token
        assert_eq!(o.rank(common_raw), Some(3));
        assert_eq!(o.freq(3), 4);
    }

    #[test]
    fn duplicates_within_doc_count_once() {
        let c = RawCorpus::from_texts(&["a a a", "a"], &Tokenizer::Words);
        let o = compute_ordering_local(&c);
        assert_eq!(o.freq(0), 2);
    }

    #[test]
    fn mr_matches_local() {
        let c = corpus();
        let local = compute_ordering_local(&c);
        let (mr, metrics) = compute_ordering_mr(&c, 2, 3);
        assert_eq!(local.universe(), mr.universe());
        for rank in 0..local.universe() as u32 {
            assert_eq!(local.raw(rank), mr.raw(rank));
            assert_eq!(local.freq(rank), mr.freq(rank));
        }
        assert!(metrics.shuffle_records > 0);
    }

    #[test]
    fn rank_raw_round_trip() {
        let o = compute_ordering_local(&corpus());
        for rank in 0..o.universe() as u32 {
            assert_eq!(o.rank(o.raw(rank)), Some(rank));
        }
        assert_eq!(o.rank(999_999), None);
    }

    #[test]
    fn ordering_kinds_differ_as_specified() {
        let pairs = vec![(10u64, 5u64), (20, 1), (30, 3)];
        let asc = GlobalOrdering::from_freqs_with(pairs.clone(), OrderingKind::AscendingFrequency);
        assert_eq!((asc.raw(0), asc.raw(1), asc.raw(2)), (20, 30, 10));
        let desc =
            GlobalOrdering::from_freqs_with(pairs.clone(), OrderingKind::DescendingFrequency);
        assert_eq!((desc.raw(0), desc.raw(1), desc.raw(2)), (10, 30, 20));
        let lex = GlobalOrdering::from_freqs_with(pairs, OrderingKind::Lexicographic);
        assert_eq!((lex.raw(0), lex.raw(1), lex.raw(2)), (10, 20, 30));
        assert_eq!(
            OrderingKind::all().map(|k| k.name()),
            ["freq-asc", "freq-desc", "lexicographic"]
        );
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two tokens with equal frequency: lower raw id gets lower rank.
        let o = GlobalOrdering::from_freqs(vec![(7, 3), (2, 3), (5, 1)]);
        assert_eq!(o.rank(5), Some(0));
        assert_eq!(o.rank(2), Some(1));
        assert_eq!(o.rank(7), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate raw token id")]
    fn duplicate_raw_ids_rejected() {
        let _ = GlobalOrdering::from_freqs(vec![(1, 2), (1, 3)]);
    }
}
