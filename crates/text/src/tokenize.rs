//! Tokenizers: document text → surface-form token streams.

/// How to split a document into tokens. All variants lowercase their input
/// first (the usual set-similarity-join preprocessing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tokenizer {
    /// Split on non-alphanumeric characters (the paper's word tokens).
    Words,
    /// Sliding character n-grams over the whole normalized text
    /// (whitespace collapsed to single spaces).
    CharGrams(usize),
    /// Sliding word n-grams ("shingles") joined with a single space.
    WordGrams(usize),
}

impl Tokenizer {
    /// Tokenize `text`, returning surface forms in document order (with
    /// duplicates — set semantics are applied later at encoding time).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        match self {
            Tokenizer::Words => words(text),
            Tokenizer::CharGrams(n) => char_grams(text, *n),
            Tokenizer::WordGrams(n) => word_grams(text, *n),
        }
    }
}

fn words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

fn char_grams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let normalized: String = text
        .to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    let chars: Vec<char> = normalized.chars().collect();
    if chars.len() < n {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![normalized];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

fn word_grams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let ws = words(text);
    if ws.len() < n {
        if ws.is_empty() {
            return Vec::new();
        }
        return vec![ws.join(" ")];
    }
    ws.windows(n).map(|w| w.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_and_lowercase() {
        assert_eq!(
            Tokenizer::Words.tokenize("Hello, World! 42"),
            vec!["hello", "world", "42"]
        );
    }

    #[test]
    fn words_empty_input() {
        assert!(Tokenizer::Words.tokenize("  ,. ").is_empty());
        assert!(Tokenizer::Words.tokenize("").is_empty());
    }

    #[test]
    fn char_grams_slide_over_normalized_text() {
        assert_eq!(
            Tokenizer::CharGrams(3).tokenize("ab  CD"),
            vec!["ab ", "b c", " cd"]
        );
    }

    #[test]
    fn char_grams_short_text_yields_whole() {
        assert_eq!(Tokenizer::CharGrams(5).tokenize("ab"), vec!["ab"]);
        assert!(Tokenizer::CharGrams(5).tokenize("").is_empty());
    }

    #[test]
    fn word_grams_shingle() {
        assert_eq!(
            Tokenizer::WordGrams(2).tokenize("a b c"),
            vec!["a b", "b c"]
        );
        assert_eq!(Tokenizer::WordGrams(4).tokenize("a b c"), vec!["a b c"]);
    }

    #[test]
    fn unicode_safe() {
        let toks = Tokenizer::CharGrams(2).tokenize("héllo");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0], "hé");
    }
}
