//! Re-encoding raw corpora into global-order rank space.

use crate::corpus::RawCorpus;
use crate::ordering::{compute_ordering_local, compute_ordering_mr, GlobalOrdering};
use crate::record::{Collection, Record, RecordId};
use ssj_mapreduce::JobMetrics;

/// Encode a raw corpus using a locally computed global ordering.
pub fn encode(corpus: &RawCorpus) -> Collection {
    let ordering = compute_ordering_local(corpus);
    encode_with(corpus, &ordering)
}

/// Encode with an explicit ordering kind (ablation support; the default
/// ascending-frequency ordering is the paper's choice).
///
/// NOTE: non-default orderings break the `token_freqs`-is-ascending
/// invariant that Even-TF pivot selection exploits; the returned
/// collection is still valid for every join (only relative token order
/// changes), but fragments will no longer balance by construction.
pub fn encode_with_kind(corpus: &RawCorpus, kind: crate::ordering::OrderingKind) -> Collection {
    let mut freqs: ssj_common::FxHashMap<u64, u64> = Default::default();
    let mut seen: Vec<u64> = Vec::new();
    for doc in &corpus.docs {
        seen.clear();
        seen.extend_from_slice(doc);
        seen.sort_unstable();
        seen.dedup();
        for &t in &seen {
            *freqs.entry(t).or_insert(0) += 1;
        }
    }
    let ordering =
        crate::ordering::GlobalOrdering::from_freqs_with(freqs.into_iter().collect(), kind);
    encode_with(corpus, &ordering)
}

/// Encode a raw corpus, computing the ordering with a MapReduce job (the
/// paper's ordering phase); returns the job's metrics alongside.
pub fn encode_mr(
    corpus: &RawCorpus,
    map_tasks: usize,
    reduce_tasks: usize,
) -> (Collection, JobMetrics) {
    let (ordering, metrics) = compute_ordering_mr(corpus, map_tasks, reduce_tasks);
    (encode_with(corpus, &ordering), metrics)
}

/// Encode a raw corpus with a given ordering. Documents become token *sets*
/// sorted ascending by rank.
pub fn encode_with(corpus: &RawCorpus, ordering: &GlobalOrdering) -> Collection {
    let records = corpus
        .docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            let ranks: Vec<u32> = doc
                .iter()
                .map(|&raw| {
                    ordering
                        .rank(raw)
                        .unwrap_or_else(|| panic!("token {raw} missing from ordering"))
                })
                .collect();
            Record::new(i as RecordId, ranks)
        })
        .collect();
    let vocab = corpus.vocab.as_ref().map(|v| {
        (0..ordering.universe() as u32)
            .map(|rank| v[ordering.raw(rank) as usize].clone())
            .collect()
    });
    Collection::new(records, ordering.freqs().to_vec(), vocab)
}

/// Encode two corpora into a **shared** token-rank space (required for R×S
/// joins: token comparisons are rank comparisons, so both sides must use
/// one global ordering computed over the union).
///
/// Both corpora must either carry vocabularies (text corpora — tokens are
/// unified by surface form) or carry none (synthetic corpora — raw ids are
/// assumed to already share a namespace).
///
/// # Panics
/// Panics when one corpus has a vocabulary and the other does not.
/// Documents of both sides plus the unified vocabulary, mid-encode.
type UnifiedDocs = (Vec<Vec<u64>>, Vec<Vec<u64>>, Option<Vec<String>>);

pub fn encode_two(r: &RawCorpus, s: &RawCorpus) -> (Collection, Collection) {
    let (r_docs, s_docs, vocab): UnifiedDocs = match (&r.vocab, &s.vocab) {
        (Some(vr), Some(vs)) => {
            // Remap S's raw ids into R's namespace (extending it).
            let mut intern: ssj_common::FxHashMap<&str, u64> = Default::default();
            let mut vocab: Vec<String> = vr.clone();
            for (i, t) in vr.iter().enumerate() {
                intern.insert(t.as_str(), i as u64);
            }
            let s_map: Vec<u64> = vs
                .iter()
                .map(|t| {
                    *intern.entry(t.as_str()).or_insert_with(|| {
                        vocab.push(t.clone());
                        (vocab.len() - 1) as u64
                    })
                })
                .collect();
            let s_docs = s
                .docs
                .iter()
                .map(|d| d.iter().map(|&raw| s_map[raw as usize]).collect())
                .collect();
            (r.docs.clone(), s_docs, Some(vocab))
        }
        (None, None) => (r.docs.clone(), s.docs.clone(), None),
        _ => panic!("encode_two: corpora must both have or both lack vocabularies"),
    };

    let mut combined_docs = r_docs.clone();
    combined_docs.extend(s_docs.iter().cloned());
    let combined = RawCorpus {
        docs: combined_docs,
        vocab,
    };
    let ordering = compute_ordering_local(&combined);
    let r_encoded = encode_with(
        &RawCorpus {
            docs: r_docs,
            vocab: combined.vocab.clone(),
        },
        &ordering,
    );
    let s_encoded = encode_with(
        &RawCorpus {
            docs: s_docs,
            vocab: combined.vocab,
        },
        &ordering,
    );
    (r_encoded, s_encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn corpus() -> RawCorpus {
        RawCorpus::from_texts(
            &["common rare shared", "common shared", "common"],
            &Tokenizer::Words,
        )
    }

    #[test]
    fn records_are_ascending_rank_sets() {
        let c = encode(&corpus());
        assert_eq!(c.len(), 3);
        for v in c.iter() {
            assert!(v.tokens.windows(2).all(|w| w[0] < w[1]));
        }
        // Rarest token ("rare", freq 1) must have rank 0 and appear first
        // in record 0.
        assert_eq!(c.tokens(0)[0], 0);
        // Most frequent ("common", freq 3) is the last rank.
        assert_eq!(*c.tokens(2).first().unwrap(), 2);
    }

    #[test]
    fn vocab_is_rank_indexed() {
        let c = encode(&corpus());
        let vocab = c.vocab.as_ref().unwrap();
        assert_eq!(vocab[0], "rare");
        assert_eq!(vocab[2], "common");
        assert_eq!(c.token_freqs, vec![1, 2, 3]);
    }

    #[test]
    fn mr_encoding_matches_local() {
        let raw = corpus();
        let local = encode(&raw);
        let (mr, _) = encode_mr(&raw, 2, 2);
        assert_eq!(local.pool(), mr.pool());
        assert_eq!(local.token_freqs, mr.token_freqs);
    }

    #[test]
    fn encode_with_kind_changes_rank_geometry_not_overlaps() {
        use crate::ordering::OrderingKind;
        let raw = RawCorpus::from_texts(&["a b c d", "a b c e", "a x"], &Tokenizer::Words);
        let asc = encode(&raw);
        for kind in OrderingKind::all() {
            let enc = encode_with_kind(&raw, kind);
            // Overlaps are order-invariant.
            for (r1, r2) in enc.iter().zip(asc.iter()) {
                assert_eq!(r1.len(), r2.len());
            }
            let inter = |c: &Collection, i: u32, j: u32| {
                c.tokens(i)
                    .iter()
                    .filter(|t| c.tokens(j).contains(t))
                    .count()
            };
            assert_eq!(inter(&enc, 0, 1), inter(&asc, 0, 1));
        }
        // Descending puts the most frequent token ("a", freq 3) at rank 0.
        let desc = encode_with_kind(&raw, OrderingKind::DescendingFrequency);
        assert_eq!(desc.token_freqs[0], 3);
    }

    #[test]
    fn duplicate_tokens_become_sets() {
        let raw = RawCorpus::from_texts(&["a a b"], &Tokenizer::Words);
        let c = encode(&raw);
        assert_eq!(c.tokens(0).len(), 2);
    }

    #[test]
    fn encode_two_shares_rank_space() {
        let r = RawCorpus::from_texts(&["shared alpha", "only r"], &Tokenizer::Words);
        let s = RawCorpus::from_texts(&["shared beta", "only s"], &Tokenizer::Words);
        let (re, se) = encode_two(&r, &s);
        assert_eq!(re.token_freqs, se.token_freqs);
        // "shared" appears in both; its rank must be identical.
        let r_vocab = re.vocab.as_ref().unwrap();
        let s_vocab = se.vocab.as_ref().unwrap();
        assert_eq!(r_vocab, s_vocab);
        let shared_rank = r_vocab.iter().position(|t| t == "shared").unwrap() as u32;
        assert!(re.tokens(0).contains(&shared_rank));
        assert!(se.tokens(0).contains(&shared_rank));
        // "shared" has frequency 2, "only" 2, rest 1.
        assert_eq!(re.token_freqs.last(), Some(&2));
    }

    #[test]
    fn encode_two_without_vocab_uses_raw_namespace() {
        let r = RawCorpus {
            docs: vec![vec![1, 2, 3]],
            vocab: None,
        };
        let s = RawCorpus {
            docs: vec![vec![2, 3, 4]],
            vocab: None,
        };
        let (re, se) = encode_two(&r, &s);
        assert_eq!(re.token_freqs.len(), 4);
        let inter: Vec<u32> = re
            .tokens(0)
            .iter()
            .filter(|t| se.tokens(0).contains(t))
            .copied()
            .collect();
        assert_eq!(inter.len(), 2);
    }

    #[test]
    #[should_panic(expected = "both have or both lack")]
    fn encode_two_mixed_vocab_rejected() {
        let r = RawCorpus::from_texts(&["a"], &Tokenizer::Words);
        let s = RawCorpus {
            docs: vec![vec![0]],
            vocab: None,
        };
        let _ = encode_two(&r, &s);
    }

    #[test]
    fn jaccard_survives_encoding() {
        // Encoding is a bijection on tokens, so set overlaps are preserved.
        let raw = RawCorpus::from_texts(&["a b c d", "a b c e"], &Tokenizer::Words);
        let c = encode(&raw);
        let s: std::collections::BTreeSet<u32> = c.tokens(0).iter().copied().collect();
        let t: std::collections::BTreeSet<u32> = c.tokens(1).iter().copied().collect();
        assert_eq!(s.intersection(&t).count(), 3);
        assert_eq!(s.union(&t).count(), 5);
    }
}
