//! Columnar token storage: one flat arena per collection.
//!
//! The paper's "no duplication" claim is about the *shuffle*; this module
//! is the same idea applied to *memory*. Instead of every record (and every
//! record segment) owning a heap-allocated `Vec<TokenId>`, a collection
//! stores all tokens in one contiguous [`TokenPool`] — a CSR-style arena:
//! a flat token vector plus an offsets table — and everything downstream
//! refers to token runs through cheap, copyable [`TokenSpan`] views.
//!
//! Consequences (see DESIGN.md "Data layout"):
//!
//! * map-side vertical partitioning produces segments with **zero** token
//!   allocations — a segment is 21 bytes of metadata plus a span;
//! * kernel inner loops run over contiguous `&[TokenId]` slices resolved
//!   once per task;
//! * the pool is shared across tasks as an `Arc` blob over a plan
//!   **broadcast edge** (`Plan::broadcast` + `add_full_broadcast` in
//!   `ssj_mapreduce`), the way Hadoop ships read-only data via the
//!   distributed cache;
//! * byte accounting stays *logical*: a span's shuffle cost is the size of
//!   the tokens it denotes, not the 8 bytes of the view (which is why
//!   `TokenSpan` deliberately does **not** implement `ByteSize` — its
//!   serialized size depends on what it points at).

use crate::record::{check_ascending, MalformedRecord, RecordId, TokenId};
use ssj_common::ByteSize;

/// A contiguous run of tokens inside a [`TokenPool`].
///
/// Spans are plain values (8 bytes, `Copy`): cloning a span never touches
/// the tokens it denotes. A span is only meaningful together with the pool
/// it was issued by; resolving it against another pool yields garbage (or a
/// panic), exactly like a file offset against the wrong file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TokenSpan {
    /// Offset of the first token in the pool's flat token vector.
    pub start: u32,
    /// Number of tokens.
    pub len: u32,
}

impl TokenSpan {
    /// Number of tokens the span denotes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the span denotes no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sub-span `[offset, offset + len)` of this span.
    ///
    /// # Panics
    /// Panics when the sub-range exceeds the span.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> TokenSpan {
        assert!(offset + len <= self.len as usize, "sub-span out of range");
        TokenSpan {
            start: self.start + offset as u32,
            len: len as u32,
        }
    }
}

/// Default width of the per-record hashed token bitmaps, in bits. Two
/// cache-line-friendly `u64` words per record: wide enough that the
/// XOR-popcount bound prunes most non-candidates at θ ≥ 0.75 on
/// wiki-like record lengths, narrow enough to stay a rounding error
/// next to the token arena itself.
pub const DEFAULT_BITMAP_BITS: usize = 128;

/// Arena-backed columnar token storage (CSR layout): record `i`'s tokens
/// are `tokens[offsets[i]..offsets[i + 1]]`.
///
/// Alongside the CSR planes the pool maintains a third columnar plane: a
/// fixed-width hashed token bitmap per record (`bitmap_words` × `u64`
/// words each, flat in `bitmaps`), built incrementally as records are
/// pushed and carried through [`TokenPool::concat`] /
/// [`TokenPool::append`] — an `Arc`-shipped pool brings its bitmaps to
/// every task for free. The bitmaps feed the lossless prune bound in
/// `ssj_similarity::bitmap` (see DESIGN.md §12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPool {
    tokens: Vec<TokenId>,
    /// `offsets.len() == record count + 1`; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Flat bitmap plane: record `i`'s bitmap is
    /// `bitmaps[i * bitmap_words..(i + 1) * bitmap_words]`.
    bitmaps: Vec<u64>,
    /// `u64` words per record bitmap (width in bits / 64, always ≥ 1).
    bitmap_words: u32,
}

impl Default for TokenPool {
    fn default() -> Self {
        TokenPool::new()
    }
}

/// Map a token to its bit index within a `bits`-wide bitmap. SplitMix-style
/// finalizer: deterministic, stateless, and identical everywhere a bitmap
/// is built (pool push, delta append, serve query side) — the prune bound
/// is only sound when both sides hash the same way.
#[inline]
fn token_bit(token: TokenId, bits: u32) -> u32 {
    let h = (token as u64 ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ((h >> 32) as u32) % bits
}

/// Set the hashed bit of every token into `words` (not cleared first).
#[inline]
fn set_bits(tokens: &[TokenId], words: &mut [u64]) {
    let bits = (words.len() * 64) as u32;
    for &t in tokens {
        let bit = token_bit(t, bits);
        words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }
}

impl TokenPool {
    /// An empty pool at the default bitmap width.
    pub fn new() -> Self {
        Self::with_bitmap_bits(DEFAULT_BITMAP_BITS).expect("default width is valid")
    }

    /// An empty pool whose per-record bitmaps are `bits` wide. The width
    /// must be a positive multiple of 64 (whole `u64` lanes — the popcount
    /// kernels have no tail-masking path); anything else is rejected with
    /// a typed [`BitmapWidthError`].
    pub fn with_bitmap_bits(bits: usize) -> Result<Self, BitmapWidthError> {
        if bits == 0 || !bits.is_multiple_of(64) {
            return Err(BitmapWidthError { bits });
        }
        Ok(TokenPool {
            tokens: Vec::new(),
            offsets: vec![0],
            bitmaps: Vec::new(),
            bitmap_words: (bits / 64) as u32,
        })
    }

    /// An empty pool with room for `records` records / `tokens` tokens.
    pub fn with_capacity(records: usize, tokens: usize) -> Self {
        let mut offsets = Vec::with_capacity(records + 1);
        offsets.push(0);
        let bitmap_words = (DEFAULT_BITMAP_BITS / 64) as u32;
        TokenPool {
            tokens: Vec::with_capacity(tokens),
            offsets,
            bitmaps: Vec::with_capacity(records * bitmap_words as usize),
            bitmap_words,
        }
    }

    /// Append one record's tokens; returns its span. Records are dense:
    /// the `n`-th push stores record id `n`.
    pub fn push(&mut self, tokens: &[TokenId]) -> TokenSpan {
        let start = self.tokens.len() as u32;
        self.tokens.extend_from_slice(tokens);
        self.offsets.push(self.tokens.len() as u32);
        let words = self.bitmap_words as usize;
        let bm_start = self.bitmaps.len();
        self.bitmaps.resize(bm_start + words, 0);
        set_bits(tokens, &mut self.bitmaps[bm_start..]);
        TokenSpan {
            start,
            len: tokens.len() as u32,
        }
    }

    /// Append one record's tokens with validation: the checked ingestion
    /// entry point for data whose strictly-ascending invariant is claimed
    /// rather than established in-process (mirrors
    /// [`Record::try_from_sorted`](crate::Record::try_from_sorted), which
    /// guards the owned-record path). On success the record's id is the
    /// pool's previous length — dense, like [`TokenPool::push`] — and its
    /// span is returned. On failure the pool is unchanged: the CSR arena
    /// never holds a half-ingested record.
    ///
    /// This is the delta-pool helper the serving plane's incremental
    /// inserts ride on (new records tokenized against a frozen ordering
    /// arrive from outside the batch pipeline and must fail loudly here),
    /// but any ingestion path that cannot trust its producer should prefer
    /// it over `push`.
    pub fn append(&mut self, tokens: &[TokenId]) -> Result<(RecordId, TokenSpan), MalformedRecord> {
        let id = self.len() as RecordId;
        if let Some(position) = check_ascending(tokens) {
            return Err(MalformedRecord { id, position });
        }
        Ok((id, self.push(tokens)))
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the pool holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total tokens across all records.
    #[inline]
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Tokens of record `rid`.
    #[inline]
    pub fn tokens_of(&self, rid: RecordId) -> &[TokenId] {
        let i = rid as usize;
        &self.tokens[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Span of record `rid`.
    #[inline]
    pub fn span_of(&self, rid: RecordId) -> TokenSpan {
        let i = rid as usize;
        TokenSpan {
            start: self.offsets[i],
            len: self.offsets[i + 1] - self.offsets[i],
        }
    }

    /// Resolve a span issued by this pool to its token slice.
    #[inline]
    pub fn resolve(&self, span: TokenSpan) -> &[TokenId] {
        &self.tokens[span.start as usize..(span.start + span.len) as usize]
    }

    /// Width of the per-record bitmaps, in bits.
    #[inline]
    pub fn bitmap_bits(&self) -> usize {
        self.bitmap_words as usize * 64
    }

    /// Hashed token bitmap of record `rid` (`bitmap_bits() / 64` words).
    #[inline]
    pub fn bitmap_of(&self, rid: RecordId) -> &[u64] {
        let words = self.bitmap_words as usize;
        let i = rid as usize * words;
        &self.bitmaps[i..i + words]
    }

    /// Build the bitmap of an arbitrary token set at this pool's width —
    /// the query-side counterpart of [`TokenPool::bitmap_of`], using the
    /// identical token→bit hash (the prune bound is sound only when both
    /// sides agree on the mapping). `out` is cleared and resized; reusing
    /// one buffer across probes keeps the query path allocation-free
    /// after the first call.
    pub fn fill_bitmap(&self, tokens: &[TokenId], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.bitmap_words as usize, 0);
        set_bits(tokens, out);
    }

    /// Iterate over all records' token slices in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[TokenId]> {
        (0..self.len()).map(move |i| self.tokens_of(i as RecordId))
    }

    /// Record lengths in id order, read straight off the CSR offsets
    /// table — no span resolution, no token access, no allocation. This is
    /// what length-histogram consumers (horizontal pivot selection) should
    /// use instead of resolving every record's slice just to take `len()`.
    pub fn lengths(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Concatenate two pools: `a`'s records keep their ids/offsets, `b`'s
    /// records follow with ids shifted by `a.len()` and token offsets
    /// shifted by `a.total_tokens()`. This is how an R×S join builds one
    /// shared arena from two collections encoded in the same rank space.
    ///
    /// # Panics
    /// Panics when the combined token count overflows the `u32` offset
    /// space (see [`TokenPool::try_concat`] for the recoverable variant),
    /// or when the two pools disagree on bitmap width.
    pub fn concat(a: &TokenPool, b: &TokenPool) -> TokenPool {
        Self::try_concat(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TokenPool::concat`]: returns [`PoolOverflow`] instead of
    /// panicking when the combined pool would exceed `u32::MAX` tokens —
    /// the CSR offsets table is `u32`, so spans past 4 Gi tokens cannot be
    /// represented.
    ///
    /// # Panics
    /// Panics when the pools' bitmap widths differ: their planes cannot be
    /// concatenated and record bitmaps would no longer be comparable.
    /// Width is fixed at construction ([`TokenPool::with_bitmap_bits`]),
    /// so a mismatch is a construction bug, not a data condition.
    pub fn try_concat(a: &TokenPool, b: &TokenPool) -> Result<TokenPool, PoolOverflow> {
        assert_eq!(
            a.bitmap_words, b.bitmap_words,
            "cannot concat token pools with different bitmap widths"
        );
        let (&a_total, &b_total) = (
            a.offsets.last().expect("offsets table is never empty"),
            b.offsets.last().expect("offsets table is never empty"),
        );
        if a_total.checked_add(b_total).is_none() {
            return Err(PoolOverflow {
                combined_tokens: a_total as u64 + b_total as u64,
            });
        }
        let mut tokens = Vec::with_capacity(a.tokens.len() + b.tokens.len());
        tokens.extend_from_slice(&a.tokens);
        tokens.extend_from_slice(&b.tokens);
        let shift = a.tokens.len() as u32;
        let mut offsets = Vec::with_capacity(a.offsets.len() + b.offsets.len() - 1);
        offsets.extend_from_slice(&a.offsets);
        offsets.extend(b.offsets[1..].iter().map(|&o| o + shift));
        let mut bitmaps = Vec::with_capacity(a.bitmaps.len() + b.bitmaps.len());
        bitmaps.extend_from_slice(&a.bitmaps);
        bitmaps.extend_from_slice(&b.bitmaps);
        Ok(TokenPool {
            tokens,
            offsets,
            bitmaps,
            bitmap_words: a.bitmap_words,
        })
    }
}

/// A [`TokenPool::with_bitmap_bits`] width that the popcount kernels
/// cannot run on: the bitmap plane is whole `u64` lanes, so the width
/// must be a positive multiple of 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapWidthError {
    /// The rejected width, in bits.
    pub bits: usize,
}

impl std::fmt::Display for BitmapWidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bitmap width {} is not a positive multiple of 64 bits",
            self.bits
        )
    }
}

impl std::error::Error for BitmapWidthError {}

/// A [`TokenPool::try_concat`] would exceed the `u32` offset space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOverflow {
    /// Token count the concatenated pool would need to address.
    pub combined_tokens: u64,
}

impl std::fmt::Display for PoolOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "concatenated token pool needs {} tokens, beyond the u32 offset \
             space ({} max); shard the join instead",
            self.combined_tokens,
            u32::MAX
        )
    }
}

impl std::error::Error for PoolOverflow {}

/// A record reference into a [`TokenPool`]: its id plus the span of its
/// tokens. This is what FS-Join's map input carries instead of an owned
/// [`Record`]; the *logical* serialized size is identical (the wire format
/// would still ship id + token vector), so shuffle and duplication metrics
/// are unchanged by the columnar layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PooledRecord {
    /// Record id (also the pool index for dense collections).
    pub id: RecordId,
    /// Span of the record's tokens in its pool.
    pub span: TokenSpan,
}

impl ByteSize for PooledRecord {
    fn byte_size(&self) -> usize {
        // id + (vec length prefix + tokens): identical to `Record`.
        4 + 4 + 4 * self.span.len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn push_and_resolve_round_trip() {
        let mut pool = TokenPool::new();
        assert!(pool.is_empty());
        let s0 = pool.push(&[1, 2, 3]);
        let s1 = pool.push(&[]);
        let s2 = pool.push(&[9]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.total_tokens(), 4);
        assert_eq!(pool.resolve(s0), &[1, 2, 3]);
        assert_eq!(pool.resolve(s1), &[] as &[u32]);
        assert_eq!(pool.resolve(s2), &[9]);
        assert_eq!(pool.tokens_of(0), &[1, 2, 3]);
        assert_eq!(pool.tokens_of(1), &[] as &[u32]);
        assert_eq!(pool.span_of(2), s2);
        assert!(s1.is_empty());
    }

    #[test]
    fn spans_are_stable_across_later_pushes() {
        let mut pool = TokenPool::with_capacity(2, 8);
        let s0 = pool.push(&[5, 6]);
        pool.push(&[7, 8, 9]);
        assert_eq!(pool.resolve(s0), &[5, 6]);
        assert_eq!(s0, TokenSpan { start: 0, len: 2 });
    }

    #[test]
    fn sub_spans() {
        let mut pool = TokenPool::new();
        let s = pool.push(&[10, 11, 12, 13]);
        let mid = s.slice(1, 2);
        assert_eq!(pool.resolve(mid), &[11, 12]);
        assert_eq!(s.slice(4, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_sub_span_rejected() {
        let mut pool = TokenPool::new();
        let s = pool.push(&[1]);
        let _ = s.slice(1, 1);
    }

    #[test]
    fn append_validates_and_assigns_dense_ids() {
        let mut pool = TokenPool::new();
        let (id0, s0) = pool.append(&[1, 5, 9]).unwrap();
        assert_eq!(id0, 0);
        assert_eq!(pool.resolve(s0), &[1, 5, 9]);
        // Empty records are valid (vacuously ascending).
        let (id1, s1) = pool.append(&[]).unwrap();
        assert_eq!(id1, 1);
        assert!(s1.is_empty());
        let (id2, _) = pool.append(&[7]).unwrap();
        assert_eq!(id2, 2);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn append_rejects_unsorted_and_duplicate_tokens() {
        let mut pool = TokenPool::new();
        pool.append(&[1, 2]).unwrap();
        // Out of order: first violation is index 2 (the 4 after 9).
        let err = pool.append(&[3, 9, 4]).unwrap_err();
        assert_eq!(err.id, 1);
        assert_eq!(err.position, 2);
        // Duplicates violate *strict* ascent too.
        let err = pool.append(&[5, 5]).unwrap_err();
        assert_eq!(err.position, 1);
        // Failed appends leave the pool untouched: same length, same
        // tokens, and the next successful append gets the same id.
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_tokens(), 2);
        let (id, _) = pool.append(&[8, 9]).unwrap();
        assert_eq!(id, 1);
        assert_eq!(pool.tokens_of(1), &[8, 9]);
    }

    #[test]
    fn append_matches_record_try_from_sorted_verdicts() {
        // The pool-level validator and the owned-record validator must
        // agree on every input, position included.
        let cases: &[&[u32]] = &[&[], &[3], &[1, 2, 3], &[2, 1], &[4, 4], &[1, 3, 3, 5]];
        for tokens in cases {
            let mut pool = TokenPool::new();
            let via_pool = pool.append(tokens);
            let via_record = Record::try_from_sorted(0, tokens.to_vec());
            match (via_pool, via_record) {
                (Ok(_), Ok(_)) => {}
                (Err(a), Err(b)) => assert_eq!(a.position, b.position, "{tokens:?}"),
                (a, b) => panic!("{tokens:?}: pool={a:?} record={b:?}"),
            }
        }
    }

    #[test]
    fn concat_shifts_offsets() {
        let mut a = TokenPool::new();
        a.push(&[1, 2]);
        a.push(&[3]);
        let mut b = TokenPool::new();
        b.push(&[4, 5, 6]);
        b.push(&[]);
        let c = TokenPool::concat(&a, &b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_tokens(), 6);
        assert_eq!(c.tokens_of(0), &[1, 2]);
        assert_eq!(c.tokens_of(1), &[3]);
        assert_eq!(c.tokens_of(2), &[4, 5, 6]);
        assert_eq!(c.tokens_of(3), &[] as &[u32]);
        let spans: Vec<TokenSpan> = (0..4).map(|i| c.span_of(i)).collect();
        assert_eq!(spans[2], TokenSpan { start: 3, len: 3 });
    }

    #[test]
    fn concat_with_empty_left_preserves_right_spans() {
        let mut b = TokenPool::new();
        let s0 = b.push(&[7, 8]);
        let s1 = b.push(&[9]);
        let c = TokenPool::concat(&TokenPool::new(), &b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_tokens(), 3);
        // No left tokens → right spans survive unshifted.
        assert_eq!(c.span_of(0), s0);
        assert_eq!(c.span_of(1), s1);
        assert_eq!(c.resolve(c.span_of(0)), &[7, 8]);
        assert_eq!(c.resolve(c.span_of(1)), &[9]);
    }

    #[test]
    fn concat_with_empty_right_is_identity() {
        let mut a = TokenPool::new();
        let s0 = a.push(&[1, 2, 3]);
        let c = TokenPool::concat(&a, &TokenPool::new());
        assert_eq!(c.len(), 1);
        assert_eq!(c.span_of(0), s0);
        assert_eq!(c.resolve(s0), a.resolve(s0));
    }

    #[test]
    fn try_concat_rejects_offset_overflow() {
        // A pool *claiming* u32::MAX tokens via its offsets table — the
        // guard reads offsets, so no 16 GiB allocation is needed to
        // exercise it. (Same-module test: private-field construction.)
        let huge = TokenPool {
            tokens: Vec::new(),
            offsets: vec![0, u32::MAX],
            bitmaps: vec![0; DEFAULT_BITMAP_BITS / 64],
            bitmap_words: (DEFAULT_BITMAP_BITS / 64) as u32,
        };
        let mut b = TokenPool::new();
        b.push(&[1]);
        let err = TokenPool::try_concat(&huge, &b).unwrap_err();
        assert_eq!(err.combined_tokens, u32::MAX as u64 + 1);
        assert!(err.to_string().contains("u32 offset space"), "{err}");
        // Exactly at the boundary is still fine.
        let max_minus_one = TokenPool {
            tokens: Vec::new(),
            offsets: vec![0, u32::MAX - 1],
            bitmaps: vec![0; DEFAULT_BITMAP_BITS / 64],
            bitmap_words: (DEFAULT_BITMAP_BITS / 64) as u32,
        };
        assert!(TokenPool::try_concat(&max_minus_one, &b).is_ok());
    }

    #[test]
    fn bitmap_width_validated_at_construction() {
        for bad in [0usize, 1, 63, 65, 100, 127] {
            let err = TokenPool::with_bitmap_bits(bad).unwrap_err();
            assert_eq!(err.bits, bad);
            assert!(err.to_string().contains("multiple of 64"), "{err}");
        }
        for good in [64usize, 128, 256, 512] {
            assert_eq!(
                TokenPool::with_bitmap_bits(good).unwrap().bitmap_bits(),
                good
            );
        }
        assert_eq!(TokenPool::new().bitmap_bits(), DEFAULT_BITMAP_BITS);
    }

    #[test]
    fn bitmaps_track_pushes_and_concat() {
        let mut a = TokenPool::with_bitmap_bits(64).unwrap();
        a.push(&[1, 2, 3]);
        a.push(&[]);
        let mut b = TokenPool::with_bitmap_bits(64).unwrap();
        b.push(&[1, 2, 3]);
        // Same tokens → same bitmap; empty record → all-zero bitmap.
        assert_eq!(a.bitmap_of(0), b.bitmap_of(0));
        assert_eq!(a.bitmap_of(1), &[0u64]);
        assert_eq!(
            a.bitmap_of(0).iter().map(|w| w.count_ones()).sum::<u32>(),
            3,
            "3 tokens in 64 bits should land on distinct bits for this input"
        );
        // Concat carries both planes; ids shift, bitmaps follow.
        let c = TokenPool::concat(&a, &b);
        assert_eq!(c.bitmap_of(0), a.bitmap_of(0));
        assert_eq!(c.bitmap_of(1), a.bitmap_of(1));
        assert_eq!(c.bitmap_of(2), b.bitmap_of(0));
        // append (the validated path) builds bitmaps too.
        let mut d = TokenPool::with_bitmap_bits(64).unwrap();
        d.append(&[1, 2, 3]).unwrap();
        assert_eq!(d.bitmap_of(0), a.bitmap_of(0));
    }

    #[test]
    fn fill_bitmap_matches_pool_plane() {
        let mut pool = TokenPool::new();
        pool.push(&[4, 17, 230, 9000]);
        let mut buf = vec![u64::MAX; 1]; // stale garbage must be cleared
        pool.fill_bitmap(pool.tokens_of(0), &mut buf);
        assert_eq!(buf.as_slice(), pool.bitmap_of(0));
        pool.fill_bitmap(&[], &mut buf);
        assert_eq!(buf, vec![0u64; pool.bitmap_bits() / 64]);
    }

    #[test]
    #[should_panic(expected = "different bitmap widths")]
    fn concat_rejects_width_mismatch() {
        let a = TokenPool::with_bitmap_bits(64).unwrap();
        let b = TokenPool::with_bitmap_bits(128).unwrap();
        let _ = TokenPool::concat(&a, &b);
    }

    #[test]
    fn lengths_come_from_offsets() {
        let mut pool = TokenPool::new();
        pool.push(&[1, 2, 3]);
        pool.push(&[]);
        pool.push(&[9]);
        assert_eq!(pool.lengths().collect::<Vec<_>>(), vec![3, 0, 1]);
        assert_eq!(TokenPool::new().lengths().count(), 0);
        // Matches the resolved-slice lengths, record for record.
        let via_iter: Vec<usize> = pool.iter().map(<[u32]>::len).collect();
        assert_eq!(pool.lengths().collect::<Vec<_>>(), via_iter);
    }

    #[test]
    fn iter_visits_records_in_order() {
        let mut pool = TokenPool::new();
        pool.push(&[1]);
        pool.push(&[2, 3]);
        let all: Vec<Vec<u32>> = pool.iter().map(|s| s.to_vec()).collect();
        assert_eq!(all, vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn pooled_record_byte_size_matches_owned_record() {
        let mut pool = TokenPool::new();
        let span = pool.push(&[1, 2]);
        let pr = PooledRecord { id: 0, span };
        let owned = Record::new(0, vec![1, 2]);
        assert_eq!(pr.byte_size(), owned.byte_size());
        assert_eq!(pr.byte_size(), 4 + 4 + 8);
    }
}
