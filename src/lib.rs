//! Umbrella crate for the FS-Join reproduction workspace.
//!
//! Re-exports the public surface of every member crate so the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! have a single import root. Library users should depend on the
//! individual crates ([`fsjoin`], [`ssj_text`], …) directly.

pub use fsjoin;
pub use ssj_baselines as baselines;
pub use ssj_common as common;
pub use ssj_mapreduce as mapreduce;
pub use ssj_similarity as similarity;
pub use ssj_text as text;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use fsjoin::{FilterSet, FsJoinConfig, FsJoinResult, JoinKernel, PivotStrategy};
    pub use ssj_mapreduce::ClusterModel;
    pub use ssj_similarity::{Measure, SimilarPair};
    pub use ssj_text::{
        encode, encode_mr, Collection, CorpusProfile, RawCorpus, Record, Tokenizer,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let cfg = FsJoinConfig::default().with_theta(0.9);
        assert_eq!(cfg.theta, 0.9);
        assert_eq!(Measure::Jaccard.name(), "jaccard");
    }
}
