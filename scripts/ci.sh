#!/usr/bin/env bash
# Tier-1 gate plus an observability smoke check.
#
#   scripts/ci.sh            # build + full test suite + expt smoke
#   SKIP_SMOKE=1 scripts/ci.sh
#
# The build is fully offline: every external dependency resolves to a
# path stub under third_party/ (see third_party/README.md), so this
# script must work with no network at all.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q --workspace

if [[ "${SKIP_SMOKE:-0}" == "1" ]]; then
    echo "== smoke: skipped (SKIP_SMOKE=1) =="
    exit 0
fi

echo "== smoke: chaos determinism gate (seed 42, 5% failures) =="
# Fault injection must never change results, and the same seed must
# reproduce the exact same retry counters: run the seeded chaos smoke
# twice and require byte-identical reports (pairs digest, retry and
# injection counters, identical=true verdict).
chaos_a="$(cargo run --release -p ssj-bench --bin chaos -- 42 0.05 2>/dev/null)"
chaos_b="$(cargo run --release -p ssj-bench --bin chaos -- 42 0.05 2>/dev/null)"
if [[ "$chaos_a" != "$chaos_b" ]]; then
    echo "chaos gate FAILED: two runs with the same seed diverged" >&2
    diff <(printf '%s\n' "$chaos_a") <(printf '%s\n' "$chaos_b") >&2 || true
    exit 1
fi
if ! grep -q '^identical=true$' <<<"$chaos_a"; then
    echo "chaos gate FAILED: fault injection changed the join output" >&2
    printf '%s\n' "$chaos_a" >&2
    exit 1
fi
echo "$chaos_a" | sed 's/^/  /'

echo "== smoke: shuffle determinism gate (workers 2 vs 7) =="
# The worker-thread count parallelizes map/shuffle/reduce but must never
# change output, metrics, or byte accounting: the streaming shuffle
# merges spill runs in deterministic map-task order no matter which
# thread transposed them. Run the fig6-style probe with two different
# worker counts and require byte-identical reports (result digest,
# candidate counts, filter counters, per-job shuffle records/bytes).
det_a="$(cargo run --release -p ssj-bench --bin determinism -- 2 2>/dev/null)"
det_b="$(cargo run --release -p ssj-bench --bin determinism -- 7 2>/dev/null)"
if [[ "$det_a" != "$det_b" ]]; then
    echo "shuffle determinism gate FAILED: worker count changed the report" >&2
    diff <(printf '%s\n' "$det_a") <(printf '%s\n' "$det_b") >&2 || true
    exit 1
fi
echo "$det_a" | sed 's/^/  /'

echo "== smoke: plan equivalence gate (pipelined vs sequential, workers 2 and 7) =="
# Partition-granular pipelining changes when tasks run, never what they
# compute: at every worker count the pipelined plan must produce the
# exact report (result digest, candidates, filter counters, per-job
# logical metrics) of the barriered sequential plan. det_a above is the
# pipelined workers=2 report; reuse it.
plan_seq2="$(cargo run --release -p ssj-bench --bin determinism -- 2 sequential 2>/dev/null)"
if [[ "$det_a" != "$plan_seq2" ]]; then
    echo "plan equivalence gate FAILED: mode changed the report at workers=2" >&2
    diff <(printf '%s\n' "$det_a") <(printf '%s\n' "$plan_seq2") >&2 || true
    exit 1
fi
plan_pipe7="$(cargo run --release -p ssj-bench --bin determinism -- 7 pipelined 2>/dev/null)"
plan_seq7="$(cargo run --release -p ssj-bench --bin determinism -- 7 sequential 2>/dev/null)"
if [[ "$plan_pipe7" != "$plan_seq7" ]]; then
    echo "plan equivalence gate FAILED: mode changed the report at workers=7" >&2
    diff <(printf '%s\n' "$plan_pipe7") <(printf '%s\n' "$plan_seq7") >&2 || true
    exit 1
fi
echo "  plan modes agree at workers 2 and 7"

echo "== smoke: rsjoin plan equivalence gate (two-input fan-in, workers 2 vs 7, both modes) =="
# The two-input R×S plan adds multi-upstream fan-in scheduling and
# broadcast edges to the surface under test: its report (digest,
# candidates, per-stage shuffle records/bytes) must also be invariant
# across worker counts and plan modes.
rs_pipe2="$(cargo run --release -p ssj-bench --bin determinism -- 2 pipelined rsjoin 2>/dev/null)"
rs_seq2="$(cargo run --release -p ssj-bench --bin determinism -- 2 sequential rsjoin 2>/dev/null)"
rs_pipe7="$(cargo run --release -p ssj-bench --bin determinism -- 7 pipelined rsjoin 2>/dev/null)"
for variant in rs_seq2 rs_pipe7; do
    if [[ "$rs_pipe2" != "${!variant}" ]]; then
        echo "rsjoin plan equivalence gate FAILED: $variant diverged" >&2
        diff <(printf '%s\n' "$rs_pipe2") <(printf '%s\n' "${!variant}") >&2 || true
        exit 1
    fi
done
echo "$rs_pipe2" | sed 's/^/  /'

echo "== smoke: rsjoin join-path equivalence gate (cogroup vs rekey, workers 2 vs 7) =="
# The co-group join stage (DESIGN.md §13) consumes the sealed prefix
# partitions in place; the legacy rekey fan-in re-shuffles them. The two
# paths must agree on every result line (digest, candidates, filter
# counters) at every worker count — only the per-job shuffle accounting
# may differ, and it must differ in the co-group path's favour: its join
# stage moves zero shuffle bytes. rs_pipe2/rs_pipe7 above are the
# co-group (default) reports; reuse them.
rk_pipe2="$(cargo run --release -p ssj-bench --bin determinism -- 2 pipelined rsjoin prune rekey 2>/dev/null)"
rk_pipe7="$(cargo run --release -p ssj-bench --bin determinism -- 7 pipelined rsjoin prune rekey 2>/dev/null)"
if [[ "$rk_pipe2" != "$rk_pipe7" ]]; then
    echo "rsjoin join-path gate FAILED: rekey path not worker-invariant" >&2
    diff <(printf '%s\n' "$rk_pipe2") <(printf '%s\n' "$rk_pipe7") >&2 || true
    exit 1
fi
results_only() { grep -E '^(result|filters):' <<<"$1"; }
if [[ "$(results_only "$rs_pipe2")" != "$(results_only "$rk_pipe2")" ]]; then
    echo "rsjoin join-path gate FAILED: cogroup and rekey paths disagree" >&2
    diff <(results_only "$rs_pipe2") <(results_only "$rk_pipe2") >&2 || true
    exit 1
fi
if ! grep -q '^job rsjoin-join: shuffle_records=0 shuffle_bytes=0 ' <<<"$rs_pipe2"; then
    echo "rsjoin join-path gate FAILED: cogroup join stage still shuffles" >&2
    grep '^job rsjoin-join:' <<<"$rs_pipe2" >&2 || true
    exit 1
fi
echo "  cogroup and rekey join paths agree at workers 2 and 7 (cogroup join: zero shuffle)"

echo "== smoke: kernel equivalence gate (bitmap prune on vs off) =="
# The bitmap prune layer consults hashed token bitmaps before exact
# verification; the XOR-Hamming bound is a true upper bound on overlap,
# so the prune is lossless by construction. Enforce it end to end: the
# determinism report (digest, candidates, filter counters, per-job
# shuffle accounting) must be byte-identical with the prune disabled,
# on both the self-join and the two-input R×S plan. det_a / rs_pipe2
# above are the prune-on reports; reuse them.
noprune_self="$(cargo run --release -p ssj-bench --bin determinism -- 2 pipelined selfjoin noprune 2>/dev/null)"
if [[ "$det_a" != "$noprune_self" ]]; then
    echo "kernel equivalence gate FAILED: bitmap prune changed the selfjoin report" >&2
    diff <(printf '%s\n' "$det_a") <(printf '%s\n' "$noprune_self") >&2 || true
    exit 1
fi
noprune_rs="$(cargo run --release -p ssj-bench --bin determinism -- 2 pipelined rsjoin noprune 2>/dev/null)"
if [[ "$rs_pipe2" != "$noprune_rs" ]]; then
    echo "kernel equivalence gate FAILED: bitmap prune changed the rsjoin report" >&2
    diff <(printf '%s\n' "$rs_pipe2") <(printf '%s\n' "$noprune_rs") >&2 || true
    exit 1
fi
echo "  prune on/off reports byte-identical (selfjoin + rsjoin)"

echo "== smoke: expt table1 --trace-out =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p ssj-bench --bin expt -- table1 --trace-out "$trace_dir" >/dev/null

for f in trace.json metrics.jsonl; do
    if [[ ! -s "$trace_dir/$f" ]]; then
        echo "smoke FAILED: $trace_dir/$f missing or empty" >&2
        exit 1
    fi
done

# Structural validation when a Python is around; plain existence check
# (above) otherwise, so the gate still passes on minimal hosts.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$trace_dir" <<'EOF'
import json, sys, collections
d = sys.argv[1]
trace = json.load(open(f"{d}/trace.json"))
events = trace["traceEvents"]
cats = collections.Counter(e.get("cat") for e in events if e.get("ph") == "X")
for needed in ("mr.job", "mr.phase", "mr.task", "fsjoin.stage", "sim.task"):
    assert cats[needed] > 0, f"no {needed} events in trace.json"
last = {}
for e in events:
    if e.get("ph") != "X":
        continue
    lane = (e["pid"], e["tid"])
    assert e["ts"] >= last.get(lane, 0), f"lane {lane} not monotonic"
    last[lane] = e["ts"]
metrics = [json.loads(l) for l in open(f"{d}/metrics.jsonl") if l.strip()]
names = {m["metric"] for m in metrics}
for needed in ("fsjoin.filter.segl_pruned", "fsjoin.filter.segi_pruned",
               "fsjoin.filter.segd_pruned", "mr.shuffle.records"):
    assert needed in names, f"no {needed} in metrics.jsonl"
print(f"smoke OK: {len(events)} trace events, {len(metrics)} metrics")
EOF
else
    echo "smoke OK (python3 unavailable; structural validation skipped)"
fi

echo "== smoke: ssj-prof critical-path + determinism gate =="
# The profiler must (a) reconstruct every plan-tagged run in the trace
# with a critical path spanning >= 95% of its makespan (--check), and
# (b) be byte-deterministic on a fixed input: two invocations on the
# same trace directory must print identical reports.
prof_a="$(cargo run --release -p ssj-bench --bin ssj-prof -- "$trace_dir" --check 2>/dev/null)"
prof_b="$(cargo run --release -p ssj-bench --bin ssj-prof -- "$trace_dir" --check 2>/dev/null)"
if [[ "$prof_a" != "$prof_b" ]]; then
    echo "ssj-prof gate FAILED: output not deterministic" >&2
    diff <(printf '%s\n' "$prof_a") <(printf '%s\n' "$prof_b") >&2 || true
    exit 1
fi
grep '^CHECK ' <<<"$prof_a" | sed 's/^/  /'
if ! grep -q '^CHECK .* OK$' <<<"$prof_a"; then
    echo "ssj-prof gate FAILED: no profiles passed the coverage check" >&2
    exit 1
fi
# Every reduce stage must publish its skew telemetry into metrics.jsonl.
if ! grep -q '^reduce-stage skew' <<<"$prof_a"; then
    echo "ssj-prof gate FAILED: no skew section (metrics.jsonl unwired?)" >&2
    exit 1
fi

echo "== smoke: serve replay determinism gate (build workers 2 vs 7) =="
# The serving plane builds its index with a batch plan, so the build
# worker count parallelizes construction — but index content and probe
# answers must not depend on it. Replay every record (including an
# insert/compaction interleave) under both worker counts and require
# byte-identical reports: result digest, probe-cascade counters, index
# shape, and the post-compaction digest.
serve_a="$(cargo run --release -p ssj-bench --bin ssj-serve -- --digest --workers 2 2>/dev/null)"
serve_b="$(cargo run --release -p ssj-bench --bin ssj-serve -- --digest --workers 7 2>/dev/null)"
if [[ "$serve_a" != "$serve_b" ]]; then
    echo "serve gate FAILED: build worker count changed the replay report" >&2
    diff <(printf '%s\n' "$serve_a") <(printf '%s\n' "$serve_b") >&2 || true
    exit 1
fi
echo "$serve_a" | sed 's/^/  /'

echo "== perf: bench_probe regression gate =="
# Fresh probe runs must stay within tolerance of the committed baselines
# (wall units are calibration-normalized, so this is machine-portable),
# and the gate itself is self-tested: an injected 2x slowdown must fail.
cargo run --release -p ssj-bench --bin bench_probe -- --check results/bench | sed 's/^/  /'
if cargo run --release -p ssj-bench --bin bench_probe -- --check results/bench --handicap 2.0 >/dev/null 2>&1; then
    echo "bench_probe gate FAILED: injected 2x slowdown was not detected" >&2
    exit 1
fi
echo "  self-test OK: 2x handicap trips the gate"
