//! Metrics invariants behind the paper's qualitative claims (Table I):
//! duplication, load balance, and cluster-simulation monotonicity.

use fsjoin_suite::baselines::ridpairs::ridpairs_ppjoin;
use fsjoin_suite::baselines::BaselineConfig;
use fsjoin_suite::prelude::*;
use fsjoin_suite::text::encode;

fn wiki(records: usize) -> Collection {
    encode(
        &CorpusProfile::WikiLike
            .config()
            .with_records(records)
            .generate(),
    )
}

/// FS-Join-V shuffles every token exactly once: the filter job's shuffled
/// bytes decompose into 25 bytes of per-segment metadata plus 4 bytes per
/// token, with zero token duplication.
#[test]
fn fsjoin_vertical_is_duplicate_free() {
    let c = wiki(400);
    let res = fsjoin_suite::fsjoin::run_self_join(
        &c,
        &FsJoinConfig::default().with_theta(0.8).with_horizontal(0),
    );
    let filter = res.chain.job("fsjoin-filter").unwrap();
    let total_tokens: usize = c.total_tokens() as usize;
    let tokens_shuffled = (filter.shuffle_bytes - 25 * filter.shuffle_records) / 4;
    assert_eq!(tokens_shuffled, total_tokens);
}

/// RIDPairsPPJoin duplicates records per prefix token; its kernel job's
/// byte expansion must exceed FS-Join's several-fold at moderate θ.
#[test]
fn ridpairs_duplicates_tokens_fsjoin_does_not() {
    let c = wiki(400);
    let theta = 0.75;
    let total_tokens: usize = c.total_tokens() as usize;

    // FS-Join (horizontal on): tokens cross once per horizontal membership;
    // boundary windows add a bounded extra (< 2x). Segment metadata is
    // excluded — it is overhead, not duplication.
    let fs = fsjoin_suite::fsjoin::run_self_join(&c, &FsJoinConfig::default().with_theta(theta));
    let filter = fs.chain.job("fsjoin-filter").unwrap();
    let fs_tokens = (filter.shuffle_bytes - 25 * filter.shuffle_records) / 4;
    let fs_dup = fs_tokens as f64 / total_tokens as f64;
    assert!(
        (1.0..3.0).contains(&fs_dup),
        "FS-Join token duplication {fs_dup} must stay bounded (θ=0.75 \
         boundary windows are wide, so ~2x membership is expected)"
    );

    // RIDPairsPPJoin: each record's tokens cross once per prefix token —
    // the duplication the paper measures. Kernel record = key(4) + rid(4)
    // + vec prefix(4) + 4/token.
    let rid = ridpairs_ppjoin(&c, Measure::Jaccard, theta, &BaselineConfig::default());
    let kernel = rid.chain.job("ridpairs-kernel").unwrap();
    let rid_tokens = (kernel.shuffle_bytes - 12 * kernel.shuffle_records) / 4;
    let rid_dup = rid_tokens as f64 / total_tokens as f64;
    assert!(
        rid_dup > 3.0 * fs_dup,
        "RIDPairs token duplication {rid_dup} should dwarf FS-Join's {fs_dup}"
    );
}

/// Even-TF pivots balance the filter job's reduce inputs better than
/// Random pivots on a skewed corpus.
#[test]
fn even_tf_balances_better_than_random() {
    let c = wiki(800);
    let skew_of = |strategy: PivotStrategy| {
        let cfg = FsJoinConfig::default()
            .with_theta(0.8)
            .with_pivot_strategy(strategy)
            .with_horizontal(0)
            // One fragment per reduce task isolates pivot balance.
            .with_fragments(12)
            .with_tasks(8, 12);
        let res = fsjoin_suite::fsjoin::run_self_join(&c, &cfg);
        res.chain
            .job("fsjoin-filter")
            .unwrap()
            .reduce_input_balance()
            .skew
    };
    let even_tf = skew_of(PivotStrategy::EvenTf);
    let random = skew_of(PivotStrategy::Random);
    assert!(
        even_tf < random,
        "Even-TF skew {even_tf} must beat Random {random}"
    );
    assert!(
        even_tf < 1.6,
        "Even-TF should be near-balanced, got {even_tf}"
    );
}

/// The cluster simulation must be monotone: more nodes never increase the
/// simulated makespan of the same measured run.
///
/// The walk starts at 2 nodes: a single node pays zero network cost by
/// construction (`shuffle_secs` ships nothing), so 1 → 2 nodes can
/// legitimately slow down when measured compute is tiny relative to the
/// shuffle — the model's cross-traffic term `(1 − 1/n)/n` peaks at n = 2
/// and only decreases from there.
#[test]
fn cluster_simulation_monotone_in_nodes() {
    let c = wiki(300);
    let res = fsjoin_suite::fsjoin::run_self_join(&c, &FsJoinConfig::default().with_theta(0.8));
    let mut last = f64::INFINITY;
    for nodes in [2usize, 5, 10, 20, 40] {
        let secs = res.simulated_secs(&ClusterModel::paper_default(nodes));
        assert!(
            secs <= last + 1e-9,
            "makespan must not grow with nodes: {nodes} nodes -> {secs}"
        );
        last = secs;
    }
}

/// Filter power ordering on real corpora: adding segment filters and the
/// prefix kernel never increases the candidate count (Table IV's rows).
#[test]
fn filter_candidates_shrink_monotonically() {
    let c = wiki(500);
    let candidates = |kernel: JoinKernel, filters: FilterSet| {
        let cfg = FsJoinConfig::default()
            .with_theta(0.8)
            .with_kernel(kernel)
            .with_filters(filters);
        fsjoin_suite::fsjoin::run_self_join(&c, &cfg).candidates
    };
    let strl = candidates(JoinKernel::Loop, FilterSet::STRL_ONLY);
    let segd = candidates(
        JoinKernel::Loop,
        FilterSet {
            segd: true,
            ..FilterSet::STRL_ONLY
        },
    );
    let all = candidates(JoinKernel::Prefix, FilterSet::ALL);
    assert!(segd <= strl, "SegD must prune: {segd} vs {strl}");
    assert!(all <= segd, "All filters must prune most: {all} vs {segd}");
    assert!(all < strl, "the full stack must beat StrL alone");
}

/// Verification is cheap relative to filtering once the filters have done
/// their work (paper Figure 10's split): the verify job's reduce phase —
/// where count-based verification actually runs — must cost a fraction of
/// the filter job's reduce phase, where the fragment join runs. The
/// comparison is between the two *reduce* makespans: those carry the
/// phases' compute, while the jobs' map/shuffle costs are data movement
/// whose simulated totals sit within measurement noise of each other at
/// test scale (the streaming reduce path cut engine overhead enough that
/// whole-job totals are a coin flip on a loaded host). Simulated times
/// come from measured wall clocks, so the best of three runs is taken to
/// stay robust under test-suite CPU contention.
#[test]
fn verification_cheaper_than_filtering() {
    let c = wiki(800);
    let cluster = ClusterModel::paper_default(10);
    let ratio = (0..3)
        .map(|_| {
            let res =
                fsjoin_suite::fsjoin::run_self_join(&c, &FsJoinConfig::default().with_theta(0.8));
            let filter = cluster
                .simulate_job(res.chain.job("fsjoin-filter").unwrap())
                .reduce_secs;
            let verify = cluster
                .simulate_job(res.chain.job("fsjoin-verify").unwrap())
                .reduce_secs;
            verify / filter
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        ratio < 1.0,
        "verification compute should cost less than the fragment join \
         (best verify/filter reduce ratio {ratio:.3})"
    );
}
