//! R×S (two-collection) joins end-to-end, including the shared-ordering
//! encoding path and the id-offset convention.

use fsjoin_suite::fsjoin::run_rs_join;
use fsjoin_suite::prelude::*;
use fsjoin_suite::similarity::naive::naive_rs_join;
use fsjoin_suite::similarity::pair::compare_results;
use fsjoin_suite::text::encode::encode_two;

/// Build two overlapping synthetic corpora in a shared raw-id namespace.
fn two_corpora(seed: u64) -> (RawCorpus, RawCorpus) {
    let base = CorpusProfile::WikiLike
        .config()
        .with_records(120)
        .with_seed(seed)
        .generate();
    // S: half copied (perturbed) from R, half fresh.
    let fresh = CorpusProfile::WikiLike
        .config()
        .with_records(60)
        .with_seed(seed ^ 0xFFFF)
        .generate();
    let mut s_docs = Vec::new();
    for (i, doc) in base.docs.iter().take(60).enumerate() {
        let mut copy = doc.clone();
        if i % 2 == 0 && copy.len() > 2 {
            copy.pop();
        }
        s_docs.push(copy);
    }
    s_docs.extend(fresh.docs);
    (
        base,
        RawCorpus {
            docs: s_docs,
            vocab: None,
        },
    )
}

#[test]
fn rs_join_matches_oracle_across_measures() {
    let (r_raw, s_raw) = two_corpora(99);
    let (r, s) = encode_two(&r_raw, &s_raw);
    let offset = r.len() as u32;
    let s_shifted: Vec<Record> = s
        .iter()
        .map(|v| Record::from_sorted(v.id + offset, v.tokens.to_vec()))
        .collect();
    for measure in Measure::all() {
        for theta in [0.7, 0.9] {
            let want = naive_rs_join(&r.views(), &s_shifted, measure, theta);
            let got = run_rs_join(
                &r,
                &s,
                &FsJoinConfig::default()
                    .with_theta(theta)
                    .with_measure(measure),
            );
            compare_results(&got.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("{measure:?} θ={theta}: {e}"));
            // Every pair must actually cross the collections.
            for p in &got.pairs {
                assert!(
                    p.a < offset && p.b >= offset,
                    "non-crossing pair {:?}",
                    p.ids()
                );
            }
        }
    }
}

#[test]
fn rs_join_finds_planted_links() {
    let (r_raw, s_raw) = two_corpora(7);
    let (r, s) = encode_two(&r_raw, &s_raw);
    let got = run_rs_join(&r, &s, &FsJoinConfig::default().with_theta(0.8));
    // Half of S (60 records, odd indices exact copies) must link back.
    assert!(
        got.pairs.len() >= 30,
        "expected the planted R→S copies to link, got {}",
        got.pairs.len()
    );
}

#[test]
fn rs_join_with_text_corpora() {
    let tokenizer = Tokenizer::Words;
    let r_raw = RawCorpus::from_texts(
        &["alpha beta gamma delta epsilon", "one two three four five"],
        &tokenizer,
    );
    let s_raw = RawCorpus::from_texts(
        &[
            "alpha beta gamma delta epsilon zeta",
            "six seven eight nine ten",
            "one two three four five",
        ],
        &tokenizer,
    );
    let (r, s) = encode_two(&r_raw, &s_raw);
    let got = run_rs_join(&r, &s, &FsJoinConfig::default().with_theta(0.8));
    let offset = r.len() as u32;
    let links: Vec<(u32, u32)> = got.pairs.iter().map(|p| (p.a, p.b - offset)).collect();
    assert_eq!(links, vec![(0, 0), (1, 2)]);
}
