//! Cross-crate end-to-end agreement: FS-Join (several configurations) and
//! all three baselines must produce identical result sets — matching the
//! brute-force oracle — on every corpus profile.

use fsjoin_suite::baselines::massjoin::{massjoin, MassJoinVariant};
use fsjoin_suite::baselines::ridpairs::ridpairs_ppjoin;
use fsjoin_suite::baselines::vsmart::vsmart_join;
use fsjoin_suite::baselines::BaselineConfig;
use fsjoin_suite::prelude::*;
use fsjoin_suite::similarity::naive::naive_self_join;
use fsjoin_suite::similarity::pair::compare_results;
use fsjoin_suite::text::encode;

fn corpus(profile: CorpusProfile, records: usize) -> Collection {
    encode(&profile.config().with_records(records).generate())
}

#[test]
fn all_algorithms_agree_on_all_profiles() {
    let cfg = BaselineConfig::default();
    let mut massjoin_runs = 0usize;
    for (profile, records) in [
        (CorpusProfile::EmailLike, 60),
        (CorpusProfile::PubMedLike, 150),
        (CorpusProfile::WikiLike, 150),
    ] {
        let c = corpus(profile, records);
        for theta in [0.75, 0.9] {
            let want = naive_self_join(&c.views(), Measure::Jaccard, theta);

            let fs =
                fsjoin_suite::fsjoin::run_self_join(&c, &FsJoinConfig::default().with_theta(theta));
            compare_results(&fs.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("fsjoin {profile:?} θ={theta}: {e}"));

            let rid = ridpairs_ppjoin(&c, Measure::Jaccard, theta, &cfg);
            compare_results(&rid.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("ridpairs {profile:?} θ={theta}: {e}"));

            let vs = vsmart_join(&c, Measure::Jaccard, theta, &cfg).expect("budget");
            compare_results(&vs.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("vsmart {profile:?} θ={theta}: {e}"));

            let mut dnf_estimate = [None::<u64>; 2];
            for (i, variant) in [MassJoinVariant::Merge, MassJoinVariant::MergeLight]
                .into_iter()
                .enumerate()
            {
                // MassJoin legitimately exceeds the byte budget on
                // long-record corpora (the paper's "cannot run
                // completely"); skip those combinations but verify the
                // guard fired for the stated reason and count the ones
                // that did run.
                match massjoin(&c, Measure::Jaccard, theta, variant, &cfg) {
                    Ok(mj) => {
                        compare_results(&mj.pairs, &want, 1e-9).unwrap_or_else(|e| {
                            panic!("massjoin {variant:?} {profile:?} θ={theta}: {e}")
                        });
                        massjoin_runs += 1;
                    }
                    Err(e) => {
                        assert!(e.estimated > e.budget);
                        dnf_estimate[i] = Some(e.estimated);
                    }
                }
            }
            // Light exists to shrink Merge's intermediates: it may only
            // DNF where Merge does too, and never with a larger estimate.
            if let Some(light) = dnf_estimate[1] {
                let merge = dnf_estimate[0].unwrap_or_else(|| {
                    panic!("MergeLight DNF'd where Merge ran ({profile:?} θ={theta})")
                });
                assert!(
                    light <= merge,
                    "Light heavier than Merge: {light} > {merge}"
                );
            }
        }
    }
    assert!(
        massjoin_runs >= 8,
        "expected MassJoin to complete on most short-record combinations, got {massjoin_runs}"
    );
}

#[test]
fn measures_agree_end_to_end() {
    let c = corpus(CorpusProfile::WikiLike, 120);
    for measure in Measure::all() {
        for theta in [0.7, 0.85] {
            let want = naive_self_join(&c.views(), measure, theta);
            let fs = fsjoin_suite::fsjoin::run_self_join(
                &c,
                &FsJoinConfig::default()
                    .with_theta(theta)
                    .with_measure(measure),
            );
            compare_results(&fs.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("fsjoin {measure:?} θ={theta}: {e}"));
            let rid = ridpairs_ppjoin(&c, measure, theta, &BaselineConfig::default());
            compare_results(&rid.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("ridpairs {measure:?} θ={theta}: {e}"));
        }
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let c = corpus(CorpusProfile::PubMedLike, 200);
    let cfg = FsJoinConfig::default().with_theta(0.8);
    let a = fsjoin_suite::fsjoin::run_self_join(&c, &cfg);
    let b = fsjoin_suite::fsjoin::run_self_join(&c, &cfg);
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(x.ids(), y.ids());
        assert_eq!(x.sim, y.sim);
    }
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(
        a.chain.total_shuffle_bytes(),
        b.chain.total_shuffle_bytes(),
        "byte counters must be deterministic"
    );
    assert_eq!(a.filter_stats, b.filter_stats);
}

#[test]
fn mr_encoding_path_agrees_with_local() {
    let raw = CorpusProfile::WikiLike
        .config()
        .with_records(100)
        .generate();
    let local = encode(&raw);
    let (mr, metrics) = encode_mr(&raw, 4, 4);
    assert_eq!(local.pool(), mr.pool());
    assert!(metrics.shuffle_records > 0);
    let cfg = FsJoinConfig::default().with_theta(0.8);
    let a = fsjoin_suite::fsjoin::run_self_join(&local, &cfg);
    let b = fsjoin_suite::fsjoin::run_self_join(&mr, &cfg);
    assert_eq!(a.pairs.len(), b.pairs.len());
}
