//! End-to-end tests of the beyond-the-paper extensions: FS-Join-PF
//! (prefix discovery + cached verification) and the MinHash/LSH
//! approximate join.

use fsjoin_suite::fsjoin::{run_self_join, run_self_join_pf};
use fsjoin_suite::prelude::*;
use fsjoin_suite::similarity::minhash::{lsh_self_join, LshConfig};
use fsjoin_suite::similarity::pair::id_pairs;
use fsjoin_suite::text::encode;

fn corpus(profile: CorpusProfile, records: usize) -> Collection {
    encode(&profile.config().with_records(records).generate())
}

#[test]
fn pf_variant_matches_exact_fsjoin_on_all_profiles() {
    for (profile, records) in [
        (CorpusProfile::EmailLike, 60),
        (CorpusProfile::PubMedLike, 200),
        (CorpusProfile::WikiLike, 200),
    ] {
        let c = corpus(profile, records);
        for theta in [0.7, 0.85] {
            let cfg = FsJoinConfig::default().with_theta(theta);
            let exact = run_self_join(&c, &cfg);
            let pf = run_self_join_pf(&c, &cfg);
            assert_eq!(
                id_pairs(&exact.pairs),
                id_pairs(&pf.pairs),
                "{profile:?} θ={theta}"
            );
            for (a, b) in exact.pairs.iter().zip(&pf.pairs) {
                assert!((a.sim - b.sim).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn pf_variant_slashes_intermediate_volume_on_zipf_data() {
    let c = corpus(CorpusProfile::WikiLike, 1_000);
    let cfg = FsJoinConfig::default().with_theta(0.8);
    let exact = run_self_join(&c, &cfg);
    let pf = run_self_join_pf(&c, &cfg);
    assert_eq!(id_pairs(&exact.pairs), id_pairs(&pf.pairs));
    assert!(
        (pf.candidates as f64) < exact.candidates as f64 / 10.0,
        "pf {} vs exact {}",
        pf.candidates,
        exact.candidates
    );
}

#[test]
fn lsh_join_is_precise_and_recalls_planted_duplicates() {
    let mut gen = CorpusProfile::WikiLike.config().with_records(600);
    gen.near_dup_fraction = 0.2;
    let c = encode(&gen.generate());
    let theta = 0.85;
    let exact = run_self_join(&c, &FsJoinConfig::default().with_theta(theta));
    let truth = id_pairs(&exact.pairs);
    let approx = id_pairs(&lsh_self_join(
        &c.views(),
        Measure::Jaccard,
        theta,
        &LshConfig::default(),
    ));
    // Perfect precision: approx ⊆ truth.
    for p in &approx {
        assert!(truth.contains(p), "false positive {p:?}");
    }
    // High recall at the default 32×4 banding for θ=0.85.
    if !truth.is_empty() {
        let recall = approx.len() as f64 / truth.len() as f64;
        assert!(recall >= 0.9, "recall {recall} over {} pairs", truth.len());
    }
}
